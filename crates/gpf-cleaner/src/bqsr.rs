//! Base Quality Score Recalibration (BQSR).
//!
//! Sequencers systematically mis-report base qualities as a function of
//! machine cycle and sequence context. BQSR measures the *empirical* error
//! rate per covariate combination — masking out known variant sites so real
//! variation is not counted as error — and rewrites each base's quality.
//!
//! Covariates follow GATK: read group, reported quality, machine cycle
//! (bucketed), and dinucleotide context. The model is hierarchical: the
//! (read group, quality) empirical rate anchors the estimate, and cycle /
//! context tables contribute deltas.
//!
//! Distribution note (§5.2.2 of the paper): the table is built per partition,
//! merged at the driver (`Collect` — the serial step the paper observed
//! slowing BQSR's parallel efficiency), and broadcast back with the known-
//! sites mask. [`RecalTable`] therefore implements [`GpfSerialize`] and
//! [`RecalTable::merge`].

use gpf_compress::{ByteReader, ByteWriter, CodecError, GpfSerialize};
use gpf_formats::cigar::CigarOp;
use gpf_formats::quality::{char_to_phred, phred_to_char};
use gpf_formats::sam::SamRecord;
use gpf_formats::vcf::VcfRecord;
use gpf_formats::ReferenceGenome;
use std::collections::{HashMap, HashSet};

/// Cycle bucket width (cycles 0-4 -> bucket 0, ...).
const CYCLE_BUCKET: u64 = 5;
/// Minimum observations before a sub-table contributes a delta.
const MIN_OBS: u64 = 20;

/// Error/observation counts per covariate combination.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecalTable {
    /// (read group, reported quality) -> (mismatches, observations).
    pub rg_q: HashMap<(u16, u8), (u64, u64)>,
    /// (read group, reported quality, cycle bucket) -> counts.
    pub cycle: HashMap<(u16, u8, u8), (u64, u64)>,
    /// (read group, reported quality, dinucleotide context) -> counts.
    pub context: HashMap<(u16, u8, u8), (u64, u64)>,
}

/// Phred of the Laplace-smoothed empirical error rate.
fn empirical_phred(mismatches: u64, observations: u64) -> f64 {
    let p = (mismatches as f64 + 1.0) / (observations as f64 + 2.0);
    -10.0 * p.log10()
}

/// Anchor rate re-smoothed at the sub-table's sample size, so a delta of
/// zero means "this covariate behaves like its parent" rather than being
/// biased by mismatched Laplace priors.
fn anchor_at_scale(anchor_m: u64, anchor_n: u64, sub_n: u64) -> f64 {
    if anchor_n == 0 {
        return empirical_phred(0, 0);
    }
    let scaled_m = anchor_m as f64 * sub_n as f64 / anchor_n as f64;
    let p = (scaled_m + 1.0) / (sub_n as f64 + 2.0);
    -10.0 * p.log10()
}

/// Positions masked from error counting: all bases touched by known variants.
pub fn known_sites_mask(known: &[VcfRecord]) -> HashSet<(u32, u64)> {
    let mut mask = HashSet::with_capacity(known.len() * 2);
    for v in known {
        for off in 0..v.ref_allele.len().max(1) as u64 {
            mask.insert((v.contig, v.pos + off));
        }
    }
    mask
}

/// Dinucleotide context code of the base at `i` in stored read order.
fn context_code(seq: &[u8], i: usize) -> u8 {
    let cur = gpf_formats::base::rank4(seq[i]);
    let prev = if i > 0 { gpf_formats::base::rank4(seq[i - 1]) } else { 0 };
    (prev << 2) | cur
}

impl RecalTable {
    /// Accumulate one record's aligned bases into the table.
    pub fn observe(
        &mut self,
        r: &SamRecord,
        reference: &ReferenceGenome,
        mask: &HashSet<(u32, u64)>,
    ) {
        if !r.flags.is_mapped() || !r.flags.is_primary() || r.flags.is_duplicate() {
            return;
        }
        let refseq = reference.contig_seq(r.contig);
        let read_len = r.seq.len() as u64;
        for block in r.cigar.walk() {
            if !matches!(block.op, CigarOp::Match | CigarOp::Equal | CigarOp::Diff) {
                continue;
            }
            for k in 0..block.len as u64 {
                let read_i = (block.read_off + k) as usize;
                let ref_i = (r.pos + block.ref_off + k) as usize;
                if ref_i >= refseq.len() {
                    break;
                }
                let base = r.seq[read_i];
                if base == b'N' || refseq[ref_i] == b'N' {
                    continue;
                }
                if mask.contains(&(r.contig, ref_i as u64)) {
                    continue;
                }
                let q = char_to_phred(r.qual[read_i]);
                let cycle = if r.flags.is_reverse() {
                    read_len - 1 - read_i as u64
                } else {
                    read_i as u64
                };
                let cycle_bucket = (cycle / CYCLE_BUCKET).min(255) as u8;
                let ctx = context_code(&r.seq, read_i);
                let miss = (base != refseq[ref_i]) as u64;
                let e = self.rg_q.entry((r.read_group, q)).or_insert((0, 0));
                e.0 += miss;
                e.1 += 1;
                let e = self.cycle.entry((r.read_group, q, cycle_bucket)).or_insert((0, 0));
                e.0 += miss;
                e.1 += 1;
                let e = self.context.entry((r.read_group, q, ctx)).or_insert((0, 0));
                e.0 += miss;
                e.1 += 1;
            }
        }
    }

    /// Merge another table into this one (associative + commutative — safe
    /// for tree aggregation).
    pub fn merge(&mut self, other: &RecalTable) {
        for (k, v) in &other.rg_q {
            let e = self.rg_q.entry(*k).or_insert((0, 0));
            e.0 += v.0;
            e.1 += v.1;
        }
        for (k, v) in &other.cycle {
            let e = self.cycle.entry(*k).or_insert((0, 0));
            e.0 += v.0;
            e.1 += v.1;
        }
        for (k, v) in &other.context {
            let e = self.context.entry(*k).or_insert((0, 0));
            e.0 += v.0;
            e.1 += v.1;
        }
    }

    /// Total bases observed.
    pub fn observations(&self) -> u64 {
        self.rg_q.values().map(|&(_, n)| n).sum()
    }

    /// Recalibrated quality for one base.
    pub fn recalibrate(&self, rg: u16, reported_q: u8, cycle_bucket: u8, ctx: u8) -> u8 {
        let Some(&(m, n)) = self.rg_q.get(&(rg, reported_q)) else {
            return reported_q;
        };
        if n < MIN_OBS {
            return reported_q;
        }
        let anchor = empirical_phred(m, n);
        let mut q = anchor;
        if let Some(&(cm, cn)) = self.cycle.get(&(rg, reported_q, cycle_bucket)) {
            if cn >= MIN_OBS {
                q += empirical_phred(cm, cn) - anchor_at_scale(m, n, cn);
            }
        }
        if let Some(&(xm, xn)) = self.context.get(&(rg, reported_q, ctx)) {
            if xn >= MIN_OBS {
                q += empirical_phred(xm, xn) - anchor_at_scale(m, n, xn);
            }
        }
        q.round().clamp(2.0, 93.0) as u8
    }
}

impl GpfSerialize for RecalTable {
    fn write(&self, w: &mut ByteWriter) {
        // Sorted entries keep the wire form deterministic.
        let mut rgq: Vec<_> = self.rg_q.iter().map(|(k, v)| (*k, *v)).collect();
        rgq.sort();
        let mut cyc: Vec<_> = self.cycle.iter().map(|(k, v)| (*k, *v)).collect();
        cyc.sort();
        let mut ctx: Vec<_> = self.context.iter().map(|(k, v)| (*k, *v)).collect();
        ctx.sort();
        w.write_u64(rgq.len() as u64);
        for ((rg, q), (m, n)) in rgq {
            w.write_u16(rg);
            w.write_u8(q);
            w.write_u64(m);
            w.write_u64(n);
        }
        for table in [cyc, ctx] {
            w.write_u64(table.len() as u64);
            for ((rg, q, k), (m, n)) in table {
                w.write_u16(rg);
                w.write_u8(q);
                w.write_u8(k);
                w.write_u64(m);
                w.write_u64(n);
            }
        }
    }

    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let mut out = RecalTable::default();
        let n = r.read_u64()? as usize;
        for _ in 0..n {
            let rg = r.read_u16()?;
            let q = r.read_u8()?;
            let m = r.read_u64()?;
            let obs = r.read_u64()?;
            out.rg_q.insert((rg, q), (m, obs));
        }
        for which in 0..2 {
            let n = r.read_u64()? as usize;
            for _ in 0..n {
                let rg = r.read_u16()?;
                let q = r.read_u8()?;
                let k = r.read_u8()?;
                let m = r.read_u64()?;
                let obs = r.read_u64()?;
                if which == 0 {
                    out.cycle.insert((rg, q, k), (m, obs));
                } else {
                    out.context.insert((rg, q, k), (m, obs));
                }
            }
        }
        Ok(out)
    }
}

/// Build a table over a record slice (one partition's gather pass).
pub fn build_recal_table(
    records: &[SamRecord],
    reference: &ReferenceGenome,
    known: &[VcfRecord],
) -> RecalTable {
    let mask = known_sites_mask(known);
    let mut table = RecalTable::default();
    for r in records {
        table.observe(r, reference, &mask);
    }
    table
}

/// Rewrite the qualities of `records` using `table`.
pub fn apply_recalibration(records: &mut [SamRecord], table: &RecalTable) {
    for r in records.iter_mut() {
        if !r.flags.is_mapped() {
            continue;
        }
        let read_len = r.seq.len() as u64;
        let quals: Vec<u8> = r
            .qual
            .iter()
            .enumerate()
            .map(|(i, &qc)| {
                let q = char_to_phred(qc);
                let cycle = if r.flags.is_reverse() {
                    read_len - 1 - i as u64
                } else {
                    i as u64
                };
                let bucket = (cycle / CYCLE_BUCKET).min(255) as u8;
                let ctx = context_code(&r.seq, i);
                phred_to_char(table.recalibrate(r.read_group, q, bucket, ctx))
            })
            .collect();
        r.qual = quals;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpf_compress::serializer::{deserialize_batch, serialize_batch, SerializerKind};
    use gpf_formats::sam::SamFlags;
    use gpf_formats::vcf::Genotype;
    use gpf_formats::Cigar;

    fn reference() -> ReferenceGenome {
        let mut state = 0xfeedu64;
        let seq: Vec<u8> = (0..2000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect();
        ReferenceGenome::from_contigs(vec![("chr1", seq)])
    }

    /// A read copied from the reference with chosen mismatch positions.
    fn read_at(r: &ReferenceGenome, pos: u64, len: usize, mismatch_at: &[usize], q: u8) -> SamRecord {
        let mut seq = r.contig_seq(0)[pos as usize..pos as usize + len].to_vec();
        for &i in mismatch_at {
            seq[i] = match seq[i] {
                b'A' => b'C',
                b'C' => b'G',
                b'G' => b'T',
                b'T' => b'A',
                other => other,
            };
        }
        SamRecord {
            name: format!("r{pos}"),
            flags: SamFlags::default(),
            contig: 0,
            pos,
            mapq: 60,
            cigar: Cigar::from_ops(vec![(len as u32, CigarOp::Match)]),
            mate_contig: gpf_formats::sam::NO_CONTIG,
            mate_pos: 0,
            tlen: 0,
            seq,
            qual: vec![phred_to_char(q); len],
            read_group: 1,
            edit_distance: mismatch_at.len() as u16,
        }
    }

    #[test]
    fn overconfident_qualities_are_lowered() {
        let r = reference();
        // Reads report Q40 but carry ~10% errors -> empirical ~Q10.
        let mut records: Vec<SamRecord> = (0..40)
            .map(|i| {
                let pos = (i * 40) as u64;
                read_at(&r, pos, 50, &[5, 15, 25, 35, 45], 40)
            })
            .collect();
        let table = build_recal_table(&records, &r, &[]);
        assert!(table.observations() > 1000);
        apply_recalibration(&mut records, &table);
        let mean_q: f64 = records
            .iter()
            .flat_map(|rec| rec.qual.iter())
            .map(|&c| char_to_phred(c) as f64)
            .sum::<f64>()
            / (records.len() * 50) as f64;
        assert!(mean_q < 20.0, "mean recalibrated quality {mean_q}");
        assert!(mean_q > 5.0, "not absurdly low: {mean_q}");
    }

    #[test]
    fn accurate_qualities_stay_roughly_put() {
        let r = reference();
        // Q30 reported, 1 error in 1000 observed -> empirical near Q30.
        let mut records: Vec<SamRecord> = (0..40)
            .map(|i| {
                let pos = (i * 40) as u64;
                let mm: &[usize] = if i % 33 == 0 { &[10] } else { &[] };
                read_at(&r, pos, 50, mm, 30)
            })
            .collect();
        let table = build_recal_table(&records, &r, &[]);
        apply_recalibration(&mut records, &table);
        let mean_q: f64 = records
            .iter()
            .flat_map(|rec| rec.qual.iter())
            .map(|&c| char_to_phred(c) as f64)
            .sum::<f64>()
            / (records.len() * 50) as f64;
        assert!((mean_q - 30.0).abs() < 5.0, "mean {mean_q}");
    }

    #[test]
    fn known_sites_are_masked() {
        let r = reference();
        // Every read carries a "mismatch" at ref position 105 — but it's a
        // known variant, so BQSR must not count it.
        let records: Vec<SamRecord> =
            (0..30).map(|_| read_at(&r, 100, 50, &[5], 35)).collect();
        let known = vec![VcfRecord {
            contig: 0,
            pos: 105,
            ref_allele: vec![r.contig_seq(0)[105]],
            alt_allele: b"T".to_vec(),
            qual: 99.0,
            genotype: Genotype::Het,
            depth: 0,
        }];
        let masked = build_recal_table(&records, &r, &known);
        let unmasked = build_recal_table(&records, &r, &[]);
        let masked_miss: u64 = masked.rg_q.values().map(|&(m, _)| m).sum();
        let unmasked_miss: u64 = unmasked.rg_q.values().map(|&(m, _)| m).sum();
        assert_eq!(masked_miss, 0, "all mismatches sit on the known site");
        assert_eq!(unmasked_miss, 30);
    }

    #[test]
    fn merge_is_associative_with_observe() {
        let r = reference();
        let a: Vec<SamRecord> = (0..10).map(|i| read_at(&r, i * 50, 40, &[3], 30)).collect();
        let b: Vec<SamRecord> = (10..20).map(|i| read_at(&r, i * 50, 40, &[7], 30)).collect();
        let whole = build_recal_table(&[a.clone(), b.clone()].concat(), &r, &[]);
        let mut merged = build_recal_table(&a, &r, &[]);
        merged.merge(&build_recal_table(&b, &r, &[]));
        assert_eq!(whole, merged);
    }

    #[test]
    fn table_serialization_round_trips() {
        let r = reference();
        let records: Vec<SamRecord> =
            (0..20).map(|i| read_at(&r, i * 60, 50, &[2, 9], 33)).collect();
        let table = build_recal_table(&records, &r, &[]);
        for kind in [SerializerKind::JavaSim, SerializerKind::KryoSim, SerializerKind::Gpf] {
            let buf = serialize_batch(kind, std::slice::from_ref(&table));
            let out: Vec<RecalTable> = deserialize_batch(kind, &buf).unwrap();
            assert_eq!(out[0], table);
        }
    }

    #[test]
    fn duplicates_and_unmapped_are_ignored() {
        let r = reference();
        let mut dup = read_at(&r, 100, 50, &[1], 30);
        dup.flags.set(SamFlags::DUPLICATE);
        let unmapped = SamRecord::unmapped("u", b"ACGT".to_vec(), b"IIII".to_vec());
        let table = build_recal_table(&[dup, unmapped], &r, &[]);
        assert_eq!(table.observations(), 0);
    }

    #[test]
    fn sparse_covariates_fall_back_to_reported_quality() {
        let table = RecalTable::default();
        assert_eq!(table.recalibrate(1, 37, 0, 5), 37);
    }

    #[test]
    fn apply_preserves_lengths_and_range() {
        let r = reference();
        let mut records: Vec<SamRecord> =
            (0..25).map(|i| read_at(&r, i * 70, 60, &[4], 38)).collect();
        let table = build_recal_table(&records, &r, &[]);
        apply_recalibration(&mut records, &table);
        for rec in &records {
            assert_eq!(rec.qual.len(), rec.seq.len());
            assert!(rec.qual.iter().all(|&c| (33..=126).contains(&c)));
        }
    }
}
