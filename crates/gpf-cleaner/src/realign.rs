//! IndelRealignment — local realignment around indels.
//!
//! The aligner maps each read independently, so reads carrying an indel with
//! little flanking sequence can end up with suboptimal alignments (scattered
//! mismatches instead of a clean gap). GATK's IndelRealigner fixes this in
//! two phases, mirrored here:
//!
//! 1. [`find_realign_intervals`] — collect candidate intervals around
//!    observed indels (read CIGARs) and known indel sites, merge overlaps;
//! 2. [`realign_interval`] — for each interval, build indel-bearing
//!    candidate haplotypes from the observed/known indels, test whether a
//!    read scores better against a haplotype than against the reference,
//!    and if so re-align it against the reference with an indel-friendly
//!    scoring (wider band, cheap gaps), updating position, CIGAR and edit
//!    distance.

use gpf_align::sw::{fit_align, Scoring};
use gpf_formats::base::rank4;
use gpf_formats::cigar::CigarOp;
use gpf_formats::genome::merge_intervals;
use gpf_formats::sam::SamRecord;
use gpf_formats::vcf::VcfRecord;
use gpf_formats::{GenomeInterval, ReferenceGenome};
use std::collections::HashMap;

/// Statistics from realigning one interval set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RealignStats {
    /// Intervals processed.
    pub intervals: usize,
    /// Reads whose alignment was rewritten.
    pub realigned_reads: usize,
    /// Candidate haplotypes evaluated.
    pub haplotypes_tested: usize,
}

/// Padding added around each indel evidence site.
const INTERVAL_PAD: u64 = 40;

/// Find intervals worth realigning: around indels observed in read CIGARs
/// and around known indel sites.
pub fn find_realign_intervals(
    records: &[SamRecord],
    known_indels: &[VcfRecord],
    reference: &ReferenceGenome,
) -> Vec<GenomeInterval> {
    let mut raw: Vec<GenomeInterval> = Vec::new();
    for r in records {
        if !r.flags.is_mapped() || !r.cigar.has_indel() {
            continue;
        }
        for block in r.cigar.walk() {
            if matches!(block.op, CigarOp::Ins | CigarOp::Del) {
                let pos = r.pos + block.ref_off;
                let clen = reference.dict().length_of(r.contig);
                raw.push(
                    GenomeInterval::new(r.contig, pos, (pos + block.len as u64).min(clen))
                        .padded(INTERVAL_PAD, clen),
                );
            }
        }
    }
    for v in known_indels {
        if v.ref_allele.len() != v.alt_allele.len() {
            let clen = reference.dict().length_of(v.contig);
            let end = (v.pos + v.ref_allele.len() as u64).min(clen);
            raw.push(GenomeInterval::new(v.contig, v.pos, end).padded(INTERVAL_PAD, clen));
        }
    }
    merge_intervals(raw)
}

/// One candidate indel: (ref position, deleted length, inserted bases).
type IndelCandidate = (u64, u32, Vec<u8>);

/// Collect indel candidates supported by reads in an interval.
fn indel_candidates(records: &[SamRecord], interval: &GenomeInterval) -> Vec<(IndelCandidate, u32)> {
    let mut counts: HashMap<IndelCandidate, u32> = HashMap::new();
    for r in records {
        if !r.flags.is_mapped() || r.contig != interval.contig || !r.cigar.has_indel() {
            continue;
        }
        for block in r.cigar.walk() {
            let pos = r.pos + block.ref_off;
            if pos < interval.start || pos >= interval.end {
                continue;
            }
            match block.op {
                CigarOp::Del => {
                    *counts.entry((pos, block.len, Vec::new())).or_insert(0) += 1;
                }
                CigarOp::Ins => {
                    let ins = r.seq
                        [block.read_off as usize..(block.read_off + block.len as u64) as usize]
                        .to_vec();
                    *counts.entry((pos, 0, ins)).or_insert(0) += 1;
                }
                _ => {}
            }
        }
    }
    let mut out: Vec<(IndelCandidate, u32)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
    out
}

/// Realign reads overlapping `interval`. Mutates `records` in place.
pub fn realign_interval(
    records: &mut [SamRecord],
    reference: &ReferenceGenome,
    interval: &GenomeInterval,
    known_indels: &[VcfRecord],
) -> RealignStats {
    let mut stats = RealignStats { intervals: 1, ..Default::default() };
    let clen = reference.dict().length_of(interval.contig);
    let window_iv = interval.padded(160, clen);
    let ref_window: Vec<u8> =
        reference.slice(window_iv).iter().map(|&b| rank4(b)).collect();

    // Candidate indels: read evidence plus known sites inside the interval.
    let mut cands = indel_candidates(records, interval);
    for v in known_indels {
        if v.contig == interval.contig
            && v.pos >= interval.start
            && v.pos < interval.end
            && v.ref_allele.len() != v.alt_allele.len()
        {
            let (del, ins) = if v.ref_allele.len() > v.alt_allele.len() {
                ((v.ref_allele.len() - v.alt_allele.len()) as u32, Vec::new())
            } else {
                (0u32, v.alt_allele[1..].to_vec())
            };
            cands.push(((v.pos + 1, del, ins), 1));
        }
    }
    if cands.is_empty() {
        return stats;
    }

    // Build up to three alternative haplotype windows.
    let mut haplotypes: Vec<Vec<u8>> = Vec::new();
    for ((pos, del, ins), _) in cands.iter().take(3) {
        if *pos < window_iv.start {
            continue;
        }
        let cut = (*pos - window_iv.start) as usize;
        if cut + *del as usize > ref_window.len() {
            continue;
        }
        let mut alt = Vec::with_capacity(ref_window.len() + ins.len());
        alt.extend_from_slice(&ref_window[..cut]);
        alt.extend(ins.iter().map(|&b| rank4(b)));
        alt.extend_from_slice(&ref_window[cut + *del as usize..]);
        haplotypes.push(alt);
        stats.haplotypes_tested += 1;
    }
    if haplotypes.is_empty() {
        return stats;
    }

    let strict = Scoring::default();
    let relaxed = Scoring { gap_open: -2, gap_extend: -1, band: 24, ..Scoring::default() };
    // One rank buffer for the whole interval — re-filled per read, never
    // re-allocated inside the haplotype loop.
    let mut read_ranks: Vec<u8> = Vec::new();
    for r in records.iter_mut() {
        if !r.flags.is_mapped()
            || r.contig != interval.contig
            || r.ref_end() <= interval.start
            || r.pos >= interval.end
            || r.edit_distance == 0
        {
            continue;
        }
        read_ranks.clear();
        read_ranks.extend(r.seq.iter().map(|&b| rank4(b)));
        let diag = (r.pos.saturating_sub(window_iv.start)) as usize;
        let Some(ref_aln) = fit_align(&read_ranks, &ref_window, diag, &strict) else {
            continue;
        };
        // An alternative haplotype only matters if it beats the reference
        // score strictly; the bit-parallel prefilter skips the affine DP
        // for haplotypes that provably cannot.
        let best_alt = haplotypes
            .iter()
            .filter(|h| {
                gpf_align::myers::prefilter_allows(
                    &read_ranks,
                    h,
                    ref_aln.score as i64 + 1,
                    &strict,
                )
            })
            .filter_map(|h| fit_align(&read_ranks, h, diag, &strict))
            .map(|a| a.score)
            .max();
        if let Some(alt_score) = best_alt {
            if alt_score > ref_aln.score {
                // The read prefers an indel haplotype: re-derive its
                // reference alignment with indel-friendly scoring — but the
                // strict pass above already produced one, so only pay for
                // the relaxed re-alignment when strict didn't improve the
                // record.
                let strict_edit = ref_aln.edit_distance as u16;
                let new_aln = if strict_edit < r.edit_distance {
                    Some(ref_aln)
                } else {
                    fit_align(&read_ranks, &ref_window, diag, &relaxed)
                        .filter(|a| (a.edit_distance as u16) < r.edit_distance)
                };
                if let Some(new_aln) = new_aln {
                    r.pos = window_iv.start + new_aln.window_start as u64;
                    r.cigar = new_aln.cigar;
                    r.edit_distance = new_aln.edit_distance as u16;
                    stats.realigned_reads += 1;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpf_formats::sam::SamFlags;
    use gpf_formats::vcf::Genotype;
    use gpf_formats::Cigar;

    fn reference() -> ReferenceGenome {
        let mut state = 0x5555u64;
        let seq: Vec<u8> = (0..4000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(3);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect();
        ReferenceGenome::from_contigs(vec![("chr1", seq)])
    }

    fn mapped(name: &str, pos: u64, cigar: &str, seq: Vec<u8>) -> SamRecord {
        let n = seq.len();
        SamRecord {
            name: name.into(),
            flags: SamFlags::default(),
            contig: 0,
            pos,
            mapq: 60,
            cigar: Cigar::parse(cigar).unwrap(),
            mate_contig: gpf_formats::sam::NO_CONTIG,
            mate_pos: 0,
            tlen: 0,
            seq,
            qual: vec![b'I'; n],
            read_group: 1,
            edit_distance: 0,
        }
    }

    #[test]
    fn intervals_from_cigar_indels() {
        let r = reference();
        let records = vec![
            mapped("a", 1000, "50M3D50M", r.contig_seq(0)[1000..1100].to_vec()),
            mapped("b", 1020, "40M3D60M", r.contig_seq(0)[1020..1120].to_vec()),
            mapped("c", 3000, "100M", r.contig_seq(0)[3000..3100].to_vec()),
        ];
        let ivs = find_realign_intervals(&records, &[], &r);
        assert_eq!(ivs.len(), 1, "overlapping evidence merges: {ivs:?}");
        assert!(ivs[0].contains(gpf_formats::GenomePosition::new(0, 1050)));
    }

    #[test]
    fn intervals_from_known_indels() {
        let r = reference();
        let known = vec![VcfRecord {
            contig: 0,
            pos: 2000,
            ref_allele: b"ATTT".to_vec(),
            alt_allele: b"A".to_vec(),
            qual: 99.0,
            genotype: Genotype::Het,
            depth: 10,
        }];
        let ivs = find_realign_intervals(&[], &known, &r);
        assert_eq!(ivs.len(), 1);
        assert!(ivs[0].start <= 2000 - 30 && ivs[0].end >= 2004 + 30);
    }

    #[test]
    fn known_snvs_do_not_create_intervals() {
        let r = reference();
        let known = vec![VcfRecord {
            contig: 0,
            pos: 2000,
            ref_allele: b"A".to_vec(),
            alt_allele: b"G".to_vec(),
            qual: 99.0,
            genotype: Genotype::Het,
            depth: 10,
        }];
        assert!(find_realign_intervals(&[], &known, &r).is_empty());
    }

    /// Construct the scenario realignment exists for: a read carrying a
    /// deletion whose aligner alignment chose mismatches instead of the gap.
    #[test]
    fn misaligned_indel_read_is_rescued() {
        let r = reference();
        let refseq = r.contig_seq(0);
        // Donor haplotype: 6bp deletion at 1550.
        let mut donor: Vec<u8> = refseq[1500..1550].to_vec();
        donor.extend_from_slice(&refseq[1556..1606]);
        // This read truly spans the deletion; give it a deliberately bad
        // alignment: full 100M at 1500 with a wrong (high) edit distance.
        let mut bad = mapped("bad", 1500, "100M", donor.clone());
        bad.edit_distance = 30;

        // A supporting read that the aligner *did* get right provides the
        // indel evidence.
        let good = mapped("good", 1500, "50M6D50M", donor);

        let mut records = vec![bad, good];
        let iv = GenomeInterval::new(0, 1540, 1566);
        let stats = realign_interval(&mut records, &r, &iv, &[]);
        assert!(stats.haplotypes_tested >= 1);
        assert_eq!(stats.realigned_reads, 1, "the bad read gets rewritten");
        let fixed = &records[0];
        assert!(fixed.cigar.has_indel(), "cigar now {}", fixed.cigar);
        assert_eq!(fixed.cigar.ref_span(), 106);
        assert!(fixed.edit_distance <= 6, "edit now {}", fixed.edit_distance);
    }

    #[test]
    fn perfect_reads_are_untouched() {
        let r = reference();
        let rec = mapped("ok", 1000, "100M", r.contig_seq(0)[1000..1100].to_vec());
        let before = rec.clone();
        let mut records = vec![rec];
        let iv = GenomeInterval::new(0, 990, 1110);
        let known = vec![VcfRecord {
            contig: 0,
            pos: 1050,
            ref_allele: b"AT".to_vec(),
            alt_allele: b"A".to_vec(),
            qual: 99.0,
            genotype: Genotype::Het,
            depth: 10,
        }];
        realign_interval(&mut records, &r, &iv, &known);
        assert_eq!(records[0], before);
    }

    #[test]
    fn empty_interval_is_noop() {
        let r = reference();
        let mut records = vec![mapped("x", 100, "100M", r.contig_seq(0)[100..200].to_vec())];
        let iv = GenomeInterval::new(0, 3000, 3100);
        let stats = realign_interval(&mut records, &r, &iv, &[]);
        assert_eq!(stats.realigned_reads, 0);
        assert_eq!(stats.haplotypes_tested, 0);
    }
}
