//! Persona-like comparator: dataflow execution with the AGD format.
//!
//! Persona (Byma et al., USENIX ATC'17) stores genomic data in its own AGD
//! (Aggregate Genomic Data) format and runs tools as TensorFlow dataflow
//! graphs. Two properties matter for the paper's Figure 11 comparison:
//!
//! * it integrates **SNAP** as its aligner and uses **single-end** reads
//!   (§5.2.3: "Persona integrated SNAP as a reader aligner ... it used
//!   single-end reads"), while GPF aligns paired-end with BWA;
//! * every dataset must be **converted into AGD** before processing and
//!   **out of AGD** (to BAM) after — at 360 MB/s in and 82 MB/s out as the
//!   Persona paper reports. The GPF authors charge this conversion to
//!   Persona's effective throughput, which collapses it by ~20× (the
//!   "Persona real BWA" line in Figure 11(d)).

use crate::flavors::Flavor;
use gpf_align::SnapAligner;
use gpf_cleaner::mark_duplicates;
use gpf_engine::{Dataset, EngineContext, JobRun};
use gpf_formats::fastq::FastqRecord;
use gpf_formats::sam::SamRecord;
use gpf_formats::ReferenceGenome;
use std::sync::Arc;

/// Persona deployment parameters.
#[derive(Debug, Clone)]
pub struct PersonaConfig {
    /// FASTQ → AGD import rate, bytes/s (Persona paper: 360 MB/s).
    pub agd_import_bps: f64,
    /// AGD → BAM export rate, bytes/s (Persona paper: 82 MB/s).
    pub agd_export_bps: f64,
    /// Engine partitions.
    pub nparts: usize,
}

impl Default for PersonaConfig {
    fn default() -> Self {
        Self { agd_import_bps: 360.0e6, agd_export_bps: 82.0e6, nparts: 8 }
    }
}

impl PersonaConfig {
    /// Seconds of AGD format conversion around one job: importing
    /// `fastq_bytes` and exporting `bam_bytes`.
    pub fn conversion_seconds(&self, fastq_bytes: u64, bam_bytes: u64) -> f64 {
        fastq_bytes as f64 / self.agd_import_bps + bam_bytes as f64 / self.agd_export_bps
    }
}

/// Result of a Persona-style alignment run.
pub struct PersonaAlignRun {
    /// Engine-recorded job (alignment proper).
    pub run: JobRun,
    /// Bases aligned.
    pub bases: u64,
    /// Input FASTQ volume (drives AGD import cost).
    pub fastq_bytes: u64,
    /// Output BAM volume (drives AGD export cost).
    pub bam_bytes: u64,
    /// Aligned records (for downstream kernels).
    pub records: Vec<SamRecord>,
}

/// Run SNAP single-end alignment under the Persona flavor.
pub fn run_snap_align(
    reference: &Arc<ReferenceGenome>,
    snap: &SnapAligner,
    reads: &[FastqRecord],
    cfg: &PersonaConfig,
) -> PersonaAlignRun {
    let ctx = EngineContext::new(Flavor::PersonaLike.engine_config().with_parallelism(cfg.nparts));
    ctx.set_phase("aligner");
    let bases: u64 = reads.iter().map(|r| r.len() as u64).sum();
    let fastq_bytes: u64 = reads.iter().map(|r| r.to_fastq_string().len() as u64).sum();
    let ds = Dataset::from_vec(Arc::clone(&ctx), reads.to_vec(), cfg.nparts);
    let snap_ref: &SnapAligner = snap;
    // SAFETY-free sharing: SnapAligner is Sync; map borrows it for the call.
    let aligned = ds.map(move |r| snap_ref.align_read(&r.name, &r.seq, &r.qual));
    let records = aligned.collect_local();
    let bam_bytes = aligned.serialized_size(gpf_compress::SerializerKind::KryoSim);
    let _ = reference;
    PersonaAlignRun { run: ctx.take_run(), bases, fastq_bytes, bam_bytes, records }
}

/// Persona-style duplicate marking over single-end records.
pub fn run_markdup(records: &[SamRecord], cfg: &PersonaConfig) -> JobRun {
    let ctx = EngineContext::new(Flavor::PersonaLike.engine_config().with_parallelism(cfg.nparts));
    ctx.set_phase("cleaner");
    let ds = Dataset::from_vec(Arc::clone(&ctx), records.to_vec(), cfg.nparts);
    // AGD ingestion barrier.
    let ds = ds.barrier_via_disk("agd-import");
    let nparts = cfg.nparts;
    let marked = ds
        .map(|r| ((r.contig as u64) << 40 | r.pos, r.clone()))
        .partition_by_key(nparts, move |k: &u64| {
            (gpf_engine::dataset::stable_hash(k) % nparts as u64) as usize
        })
        .map_partitions(|part| {
            let mut records: Vec<SamRecord> = part.iter().map(|(_, r)| r.clone()).collect();
            mark_duplicates(&mut records);
            records
        });
    let _ = marked.barrier_via_disk("agd-export");
    ctx.take_run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpf_workloads::readsim::{ReadSimulator, SimulatorConfig};
    use gpf_workloads::refgen::ReferenceSpec;
    use gpf_workloads::variants::{DonorGenome, VariantSpec};

    #[test]
    fn conversion_costs_match_paper_rates() {
        let cfg = PersonaConfig::default();
        // 430 GB FASTQ in, 125 GB BAM out — §5.2.3's example: ~1194 s import
        // + ~1524 s export ≈ 2700+ s, i.e. the ~3300 s the paper quotes for
        // the platinum genome is the right order.
        let secs = cfg.conversion_seconds(430_000_000_000, 125_000_000_000);
        assert!((2000.0..4500.0).contains(&secs), "{secs}");
    }

    #[test]
    fn snap_align_and_markdup_run() {
        let reference = Arc::new(
            ReferenceSpec { contig_lengths: vec![30_000], seed: 61, ..Default::default() }
                .generate(),
        );
        let donor = DonorGenome::generate(&reference, &VariantSpec::default());
        let pairs = ReadSimulator::new(
            &reference,
            &donor,
            SimulatorConfig { coverage: 4.0, duplicate_rate: 0.1, ..Default::default() },
        )
        .simulate();
        // Persona uses single-end: take mate 1 only.
        let reads: Vec<FastqRecord> = pairs.iter().map(|p| p.pair.r1.clone()).collect();
        let snap = SnapAligner::new(&reference);
        let cfg = PersonaConfig { nparts: 3, ..Default::default() };
        let aligned = run_snap_align(&reference, &snap, &reads, &cfg);
        assert_eq!(aligned.records.len(), reads.len());
        assert!(aligned.bases > 0);
        assert!(aligned.bam_bytes > 0);
        assert!(aligned.run.total_cpu_s() > 0.0);

        let md = run_markdup(&aligned.records, &cfg);
        // AGD import/export barriers bracket the kernel.
        assert!(md.num_stages() >= 3, "stages {}", md.num_stages());
    }
}
