//! # gpf-baselines
//!
//! The comparator systems of the paper's evaluation (§5.2), rebuilt on the
//! same substrates so every comparison is mechanism-for-mechanism rather
//! than constant-for-constant:
//!
//! * [`churchill`] — Churchill (Kelly et al. 2015): full-pipeline
//!   parallelization with **fixed-boundary** chromosomal subregions decided
//!   at the start of the analysis, and intermediate data handed between
//!   steps through **files on disk**. Its scaling ceiling (§5.2.1: limited
//!   to ~1024 cores, 128 min vs GPF's 37 at 1024) comes from static load
//!   imbalance plus the disk round-trips — both reproduced here.
//! * [`flavors`] — ADAM-like and GATK4-like configurations: the same
//!   kernels executed on the engine but with Kryo-style serialization (no
//!   genomic compression), per-step bundle rebuilds (no §4.3 fusion),
//!   format-conversion overhead (ADAM's columnar conversion), and a
//!   JVM-vs-native CPU factor calibrated in DESIGN.md.
//! * [`persona`] — Persona (Byma et al. 2017): a dataflow framework with
//!   the AGD storage format. Alignment uses the SNAP-like hash aligner,
//!   single-end, and every dataset must be **converted into and out of
//!   AGD** at the rates the paper quotes (360 MB/s in, 82 MB/s out) —
//!   the conversion cost that Figure 11(d)'s "Persona real BWA" line adds.
//! * [`kernels`] — shared kernel runners (MarkDuplicate / BQSR / INDEL
//!   realignment) parameterized by flavor, producing engine `JobRun`s the
//!   Figure 11 benchmarks feed to the cluster simulator.

pub mod churchill;
pub mod flavors;
pub mod kernels;
pub mod persona;

pub use churchill::ChurchillPipeline;
pub use flavors::Flavor;
pub use persona::PersonaConfig;
