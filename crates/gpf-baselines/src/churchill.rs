//! Churchill-like pipeline: static fixed-boundary subregions + file-based
//! intermediate data.
//!
//! Churchill (Kelly et al. 2015) parallelizes the whole WGS pipeline by
//! dividing the genome into subregions with **fixed boundaries decided at
//! the beginning of the analysis** and handing intermediate BAM files
//! between steps through the filesystem. The GPF paper (§5.2.1) attributes
//! Churchill's ≤1024-core scaling ceiling to "the chromosomal subregion
//! \[being\] decided at the beginning of the analysis and the inherent load
//! imbalance of the strategy". This module reproduces both mechanisms: the
//! equal-length region split never adapts to coverage skew, and every step
//! round-trips through [`gpf_engine::Dataset::barrier_via_disk`].

use gpf_align::BwaMemAligner;
use gpf_caller::HaplotypeCaller;
use gpf_cleaner::bqsr::{apply_recalibration, build_recal_table};
use gpf_cleaner::realign::{find_realign_intervals, realign_interval};
use gpf_cleaner::{coordinate_sort, mark_duplicates};
use gpf_core::partition::PartitionInfo;
use gpf_engine::{Dataset, EngineConfig, EngineContext, JobRun};
use gpf_formats::fastq::FastqPair;
use gpf_formats::sam::SamRecord;
use gpf_formats::vcf::VcfRecord;
use gpf_formats::ReferenceGenome;
use std::sync::Arc;

/// The Churchill-like comparator.
pub struct ChurchillPipeline {
    reference: Arc<ReferenceGenome>,
    aligner: Arc<BwaMemAligner>,
    /// Fixed subregion length (decided up front, never split).
    pub region_len: u64,
    /// Engine partitions for the input FASTQ.
    pub nparts: usize,
}

impl ChurchillPipeline {
    /// Build the pipeline (constructs the aligner index).
    pub fn new(reference: Arc<ReferenceGenome>, region_len: u64, nparts: usize) -> Self {
        let aligner = Arc::new(BwaMemAligner::new(&reference));
        Self { reference, aligner, region_len, nparts }
    }

    /// Reuse an existing aligner index.
    pub fn with_aligner(
        reference: Arc<ReferenceGenome>,
        aligner: Arc<BwaMemAligner>,
        region_len: u64,
        nparts: usize,
    ) -> Self {
        Self { reference, aligner, region_len, nparts }
    }

    /// Run the full pipeline, returning the calls and the recorded job.
    pub fn run(&self, pairs: &[FastqPair], known: &[VcfRecord]) -> (Vec<VcfRecord>, JobRun) {
        // Churchill's component tools are native (bwa) and JVM (GATK); its
        // serialized intermediates are BAM — closest to the Kryo profile.
        let ctx = EngineContext::new(
            EngineConfig::kryo().with_parallelism(self.nparts),
        );

        // --- Aligner: bwa, then BAM to disk. -----------------------------
        ctx.set_phase("aligner");
        let fastq = Dataset::from_vec(Arc::clone(&ctx), pairs.to_vec(), self.nparts);
        let aligner = Arc::clone(&self.aligner);
        let aligned = fastq
            .flat_map(move |p| {
                let (a, b) = aligner.align_pair(p);
                [a, b]
            })
            .barrier_via_disk("bwa->aligned.bam");

        // --- Static subregion split (fixed boundaries, never adapted). ---
        ctx.set_phase("cleaner");
        let info = PartitionInfo::new(&self.reference.dict().lengths(), self.region_len);
        let nregions = info.num_partitions() as usize;
        let info_route = info.clone();
        let split = aligned
            .partition_by(nregions, move |r: &SamRecord| {
                gpf_core::process::route_record(r, &info_route) as usize
            })
            .barrier_via_disk("split->region.bams");

        // --- Per-region cleaning, each step spilling BAMs. ----------------
        let deduped = split
            .map_partitions(|part| {
                let mut records: Vec<SamRecord> = part.to_vec();
                coordinate_sort(&mut records);
                mark_duplicates(&mut records);
                records
            })
            .barrier_via_disk("dedup->dedup.bams");

        let reference = Arc::clone(&self.reference);
        let known_arc = Arc::new(known.to_vec());
        let known_realign = Arc::clone(&known_arc);
        let cleaned = deduped
            .map_partitions(move |part| {
                let mut records: Vec<SamRecord> = part.to_vec();
                let intervals = find_realign_intervals(&records, &known_realign, &reference);
                for iv in &intervals {
                    realign_interval(&mut records, &reference, iv, &known_realign);
                }
                records
            })
            .barrier_via_disk("realign->realign.bams");

        let reference = Arc::clone(&self.reference);
        let known_bqsr = Arc::clone(&known_arc);
        let recal = cleaned
            .map_partitions(move |part| {
                // Churchill recalibrates per region (no global table merge).
                let mut records: Vec<SamRecord> = part.to_vec();
                let table = build_recal_table(&records, &reference, &known_bqsr);
                apply_recalibration(&mut records, &table);
                records
            })
            .barrier_via_disk("bqsr->recal.bams");

        // --- Per-region calling. ------------------------------------------
        ctx.set_phase("caller");
        let reference = Arc::clone(&self.reference);
        let intervals = Arc::new(info.intervals());
        let calls_ds = recal.map_partitions_with_index(move |pi, part| {
            let mut records: Vec<SamRecord> = part.to_vec();
            coordinate_sort(&mut records);
            let calls = HaplotypeCaller::default().call(&records, &reference);
            let region = intervals[pi.min(intervals.len() - 1)];
            calls
                .into_iter()
                .filter(|v| {
                    v.contig == region.contig && v.pos >= region.start && v.pos < region.end
                })
                .collect()
        });
        let mut calls = calls_ds.collect();
        calls.sort_by_key(|v| (v.contig, v.pos, v.alt_allele.clone()));
        (calls, ctx.take_run())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpf_workloads::readsim::{simulate_fastq_pairs, SimulatorConfig};
    use gpf_workloads::refgen::ReferenceSpec;
    use gpf_workloads::variants::{DonorGenome, VariantSpec};

    #[test]
    fn churchill_pipeline_calls_variants_with_disk_heavy_profile() {
        let reference = Arc::new(
            ReferenceSpec { contig_lengths: vec![40_000], seed: 21, ..Default::default() }
                .generate(),
        );
        let donor = DonorGenome::generate(
            &reference,
            &VariantSpec { snv_rate: 1e-3, indel_rate: 0.0, seed: 3, ..Default::default() },
        );
        let pairs = simulate_fastq_pairs(
            &reference,
            &donor,
            SimulatorConfig {
                // 30x rather than 20x: at 20x the sampled coverage gaps leave
                // the majority-recall sanity bound below only one missed SNV
                // of slack, so any PRNG stream change flips the test.
                coverage: 30.0,
                duplicate_rate: 0.05,
                hotspot_count: 1,
                ..Default::default()
            },
        );
        let pipeline = ChurchillPipeline::new(Arc::clone(&reference), 5_000, 4);
        let (calls, run) = pipeline.run(&pairs, &[]);
        assert!(!calls.is_empty(), "churchill calls variants");
        // Recall sanity: finds a majority of planted SNVs.
        let recalled = donor
            .truth
            .iter()
            .filter(|t| calls.iter().any(|c| c.pos.abs_diff(t.pos.pos) <= 1))
            .count();
        assert!(
            recalled * 2 > donor.truth.len(),
            "recall {recalled}/{}",
            donor.truth.len()
        );
        // The disk barriers dominate its shuffle profile: every stage
        // round-trips the full dataset.
        assert!(run.num_stages() >= 6, "stages {}", run.num_stages());
        assert!(run.total_shuffle_bytes() > 0);
    }

    #[test]
    fn static_partitions_skew_under_hotspots() {
        let reference = Arc::new(
            ReferenceSpec { contig_lengths: vec![60_000], seed: 22, ..Default::default() }
                .generate(),
        );
        let donor = DonorGenome::generate(&reference, &VariantSpec::default());
        let pairs = simulate_fastq_pairs(
            &reference,
            &donor,
            SimulatorConfig {
                coverage: 10.0,
                hotspot_count: 1,
                hotspot_multiplier: 40.0,
                hotspot_len: 3_000,
                ..Default::default()
            },
        );
        let pipeline = ChurchillPipeline::new(Arc::clone(&reference), 6_000, 4);
        let (_, run) = pipeline.run(&pairs, &[]);
        // The final stage holds the per-region caller tasks; check
        // task-time skew: the hotspot region's task should far exceed the
        // median. (The stage was opened by the preceding disk barrier, so
        // its phase tag is the cleaner's — select by position, not phase.)
        let caller_stage = run
            .stages
            .iter()
            .rev()
            .find(|s| s.task_cpu_s.len() > 4)
            .expect("caller stage recorded");
        let mut times = caller_stage.task_cpu_s.clone();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[times.len() / 2].max(1e-9);
        let max = *times.last().unwrap();
        assert!(
            max > 3.0 * median,
            "static partitioning shows straggler: max {max:.4}s vs median {median:.4}s"
        );
    }
}
