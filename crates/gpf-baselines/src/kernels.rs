//! Flavor-parameterized kernel runners for the Figure 11 strong-scaling
//! comparisons: each runs one Cleaner kernel on the engine under a flavor's
//! configuration and returns the recorded [`JobRun`] for the cluster
//! simulator.

use crate::flavors::Flavor;
use gpf_cleaner::bqsr::{apply_recalibration, known_sites_mask, RecalTable};
use gpf_cleaner::mark_duplicates;
use gpf_cleaner::realign::{find_realign_intervals, realign_interval};
use gpf_core::partition::PartitionInfo;
use gpf_core::process::{build_bundles, flatten_sams};
use gpf_engine::{Dataset, EngineContext, JobRun};
use gpf_formats::sam::SamRecord;
use gpf_formats::vcf::VcfRecord;
use gpf_formats::ReferenceGenome;
use std::sync::Arc;

/// Shared input for a kernel run.
#[derive(Clone)]
pub struct KernelInput {
    /// Reference genome.
    pub reference: Arc<ReferenceGenome>,
    /// Aligned records (the kernel's working set).
    pub records: Vec<SamRecord>,
    /// Known-sites VCF (dbSNP analogue).
    pub known: Vec<VcfRecord>,
    /// Genomic partition length for locus partitioning.
    pub partition_len: u64,
    /// Engine partition count for the input dataset.
    pub nparts: usize,
}

impl KernelInput {
    fn ctx(&self, flavor: Flavor) -> Arc<EngineContext> {
        EngineContext::new(flavor.engine_config().with_parallelism(self.nparts))
    }

    fn dataset(&self, ctx: &Arc<EngineContext>, flavor: Flavor) -> Dataset<SamRecord> {
        let ds = Dataset::from_vec(Arc::clone(ctx), self.records.clone(), self.nparts);
        if flavor.converts_format() {
            // ADAM ingests by converting BAM -> columnar storage.
            ds.barrier_via_disk("format-conversion(in)")
        } else {
            ds
        }
    }

    fn finish(
        &self,
        ctx: &Arc<EngineContext>,
        flavor: Flavor,
        out: Dataset<SamRecord>,
    ) -> JobRun {
        if flavor.converts_format() {
            let _ = out.barrier_via_disk("format-conversion(out)");
        } else {
            // Materialization of the kernel output (writes survive the job).
            let _ = out.len();
        }
        ctx.take_run()
    }

    fn partition_info(&self) -> PartitionInfo {
        PartitionInfo::new(&self.reference.dict().lengths(), self.partition_len)
    }
}

/// MarkDuplicate kernel (Figure 11(a)).
pub fn run_markdup(flavor: Flavor, input: &KernelInput) -> JobRun {
    let ctx = input.ctx(flavor);
    ctx.set_phase("cleaner");
    let ds = input.dataset(&ctx, flavor);
    let nparts = input.nparts;
    let keyed = ds.map(|r| {
        let own = (r.contig, r.pos);
        let mate = (r.mate_contig, r.mate_pos);
        let key = own.min(mate);
        ((key.0 as u64) << 40 | key.1, r.clone())
    });
    let partitioned = keyed.partition_by_key(nparts, move |k: &u64| {
        (gpf_engine::dataset::stable_hash(k) % nparts as u64) as usize
    });
    let marked = partitioned.map_partitions(|part| {
        let mut records: Vec<SamRecord> = part.iter().map(|(_, r)| r.clone()).collect();
        mark_duplicates(&mut records);
        records
    });
    input.finish(&ctx, flavor, marked)
}

/// BQSR kernel (Figure 11(b)): gather → collect (serial) → broadcast → apply.
pub fn run_bqsr(flavor: Flavor, input: &KernelInput) -> JobRun {
    let ctx = input.ctx(flavor);
    ctx.set_phase("cleaner");
    let ds = input.dataset(&ctx, flavor);
    let info = input.partition_info();
    let known = Dataset::from_vec(Arc::clone(&ctx), input.known.clone(), input.nparts);
    let bundles = build_bundles(&ctx, &input.reference, &info, &ds, Some(&known));
    let reference = Arc::clone(&input.reference);
    let tables = bundles.map(move |b| {
        let mask = known_sites_mask(&b.vcfs);
        let mut t = RecalTable::default();
        for r in &b.sams {
            t.observe(r, &reference, &mask);
        }
        t
    });
    let collected = tables.collect();
    let mut merged = RecalTable::default();
    for t in &collected {
        merged.merge(t);
    }
    let table = ctx.broadcast(merged);
    let recal = bundles.map(move |b| {
        let mut out = b.clone();
        apply_recalibration(&mut out.sams, table.value());
        out
    });
    let out = flatten_sams(&recal);
    input.finish(&ctx, flavor, out)
}

/// INDEL realignment kernel (Figure 11(c)).
pub fn run_realign(flavor: Flavor, input: &KernelInput) -> JobRun {
    let ctx = input.ctx(flavor);
    ctx.set_phase("cleaner");
    let ds = input.dataset(&ctx, flavor);
    let info = input.partition_info();
    let known = Dataset::from_vec(Arc::clone(&ctx), input.known.clone(), input.nparts);
    let bundles = build_bundles(&ctx, &input.reference, &info, &ds, Some(&known));
    let reference = Arc::clone(&input.reference);
    let realigned = bundles.map(move |b| {
        let mut out = b.clone();
        let intervals = find_realign_intervals(&out.sams, &out.vcfs, &reference);
        for iv in &intervals {
            realign_interval(&mut out.sams, &reference, iv, &out.vcfs);
        }
        out
    });
    let out = flatten_sams(&realigned);
    input.finish(&ctx, flavor, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpf_formats::sam::SamFlags;
    use gpf_formats::Cigar;

    fn input() -> KernelInput {
        let seq: Vec<u8> = (0..20_000).map(|i| b"ACGT"[(i * 7 + i / 13) % 4]).collect();
        let reference = Arc::new(ReferenceGenome::from_contigs(vec![("chr1", seq)]));
        let records: Vec<SamRecord> = (0..400)
            .map(|i| {
                let pos = (i * 47) as u64 % 19_000;
                SamRecord {
                    name: format!("r{i}"),
                    flags: SamFlags::default(),
                    contig: 0,
                    pos,
                    mapq: 60,
                    cigar: Cigar::parse("100M").unwrap(),
                    mate_contig: 0,
                    mate_pos: (pos + 200).min(18_999),
                    tlen: 300,
                    seq: reference.contig_seq(0)[pos as usize..pos as usize + 100].to_vec(),
                    qual: vec![b'F'; 100],
                    read_group: 1,
                    edit_distance: 0,
                }
            })
            .collect();
        KernelInput { reference, records, known: vec![], partition_len: 2_000, nparts: 4 }
    }

    #[test]
    fn all_kernels_run_under_all_flavors() {
        let input = input();
        for flavor in [Flavor::Gpf, Flavor::AdamLike, Flavor::Gatk4Like] {
            let md = run_markdup(flavor, &input);
            assert!(md.num_stages() >= 2, "{flavor:?} markdup stages");
            let bq = run_bqsr(flavor, &input);
            assert!(bq.num_stages() >= 3, "{flavor:?} bqsr stages");
            let ir = run_realign(flavor, &input);
            assert!(ir.num_stages() >= 2, "{flavor:?} realign stages");
        }
    }

    #[test]
    fn adam_pays_conversion_and_bigger_shuffles() {
        let input = input();
        let gpf = run_markdup(Flavor::Gpf, &input);
        let adam = run_markdup(Flavor::AdamLike, &input);
        assert!(
            adam.total_shuffle_bytes() > gpf.total_shuffle_bytes(),
            "adam {} vs gpf {}",
            adam.total_shuffle_bytes(),
            gpf.total_shuffle_bytes()
        );
        assert!(adam.num_stages() > gpf.num_stages(), "conversion adds stages");
    }

    #[test]
    fn bqsr_records_serial_collect_and_broadcast() {
        let input = input();
        let run = run_bqsr(Flavor::Gpf, &input);
        assert!(
            run.stages.iter().any(|s| s.kind == gpf_engine::StageKind::Collect),
            "collect stage present"
        );
        assert!(run.stages.iter().any(|s| s.broadcast_bytes > 0), "broadcast recorded");
    }
}
