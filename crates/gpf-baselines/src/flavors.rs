//! Execution flavors: how each compared system configures the engine.

use gpf_compress::SerializerKind;
use gpf_engine::EngineConfig;

/// Which system's execution profile to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// GPF: compressed genomic serializer, fused bundle stages.
    Gpf,
    /// ADAM: Kryo serialization, per-step bundle rebuilds, columnar format
    /// conversion on entry/exit of every kernel.
    AdamLike,
    /// GATK4 (beta-era Spark): Kryo serialization, per-step rebuilds.
    Gatk4Like,
    /// Persona: dataflow with AGD conversion (see [`crate::persona`]).
    PersonaLike,
}

impl Flavor {
    /// Engine configuration for this flavor.
    pub fn engine_config(self) -> EngineConfig {
        match self {
            Flavor::Gpf => EngineConfig::gpf(),
            // JVM heaps churn more per record than compact native structs;
            // reflected in the per-record overhead the GC model sees.
            Flavor::AdamLike | Flavor::Gatk4Like => EngineConfig {
                serializer: SerializerKind::KryoSim,
                per_record_overhead_bytes: 160,
                ..EngineConfig::default()
            },
            Flavor::PersonaLike => EngineConfig {
                serializer: SerializerKind::KryoSim,
                per_record_overhead_bytes: 96,
                ..EngineConfig::default()
            },
        }
    }

    /// CPU-time factor relative to this reproduction's native Rust kernels,
    /// applied as the cluster simulator's `cpu_scale`.
    ///
    /// All flavors execute the *same* Rust kernels here, but the systems
    /// being modelled do not share a runtime: the paper's GPF is Scala on
    /// the JVM (≈3.5× our native kernels — calibrated so our per-megabase
    /// core-seconds match the paper's Table 4 core-hours), ADAM and GATK4
    /// add their own interpretation/abstraction overhead on top of the JVM,
    /// and Persona is a C++ dataflow runtime with per-op graph overhead.
    /// See DESIGN.md §"Calibration".
    pub fn cpu_factor(self) -> f64 {
        match self {
            Flavor::Gpf => 3.5,
            Flavor::AdamLike => 10.5,
            Flavor::Gatk4Like => 9.1,
            Flavor::PersonaLike => 5.6,
        }
    }

    /// Whether the flavor rebuilds its bundled inputs for every kernel (no
    /// §4.3 fusion) — true for everything but GPF.
    pub fn rebuilds_bundles(self) -> bool {
        !matches!(self, Flavor::Gpf)
    }

    /// Whether the flavor pays a storage-format conversion around each
    /// kernel (ADAM's Parquet-style columnar conversion).
    pub fn converts_format(self) -> bool {
        matches!(self, Flavor::AdamLike)
    }

    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Flavor::Gpf => "GPF",
            Flavor::AdamLike => "ADAM",
            Flavor::Gatk4Like => "GATK4",
            Flavor::PersonaLike => "Persona",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpf_is_the_fastest_flavor() {
        for f in [Flavor::AdamLike, Flavor::Gatk4Like, Flavor::PersonaLike] {
            assert!(f.cpu_factor() > Flavor::Gpf.cpu_factor(), "{:?}", f);
        }
        // The JVM-parity anchor: paper-GPF itself runs on the JVM.
        assert!(Flavor::Gpf.cpu_factor() > 1.0);
    }

    #[test]
    fn serializer_choices() {
        assert_eq!(Flavor::Gpf.engine_config().serializer, SerializerKind::Gpf);
        assert_eq!(Flavor::AdamLike.engine_config().serializer, SerializerKind::KryoSim);
        assert!(!Flavor::Gpf.rebuilds_bundles());
        assert!(Flavor::AdamLike.rebuilds_bundles());
        assert!(Flavor::AdamLike.converts_format());
        assert!(!Flavor::Gatk4Like.converts_format());
    }
}
