//! Differential and hostile-input properties for the alignment kernels.
//!
//! The SWAR Smith–Waterman is pinned to the retained scalar reference —
//! identical score, CIGAR, `window_start`, and edit distance, including
//! `None` on uncovered bands — and the Myers bit-parallel distance to a
//! classic O(mn) DP. The prefilter property is the one the candidate loops
//! rely on for byte-identical output: it never skips a window the DP would
//! have accepted.

use gpf_align::myers;
use gpf_align::sw::{self, reference::fit_align_ref, swar, Scoring};
use gpf_support::proptest::prelude::*;

fn rank_seq(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, 0..max_len)
}

/// Byte sequences with no alphabet guarantee — the kernels promise byte
/// equality semantics, not a 4-letter alphabet.
fn wild_seq(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max_len)
}

fn scoring() -> impl Strategy<Value = Scoring> {
    (0i32..=4, -4i32..=0, -8i32..=0, -4i32..=0, 0usize..=24).prop_map(
        |(match_score, mismatch, gap_open, gap_extend, band)| Scoring {
            match_score,
            mismatch,
            gap_open,
            gap_extend,
            band,
        },
    )
}

/// Scorings that may fall outside the SWAR envelope (positive gap deltas,
/// huge magnitudes) — the dispatcher must still agree with the reference
/// by falling back.
fn hostile_scoring() -> impl Strategy<Value = Scoring> {
    (any::<i16>(), any::<i16>(), -40i32..=40, -40i32..=40, 0usize..=40).prop_map(
        |(match_score, mismatch, gap_open, gap_extend, band)| Scoring {
            match_score: match_score as i32,
            mismatch: mismatch as i32,
            gap_open,
            gap_extend,
            band,
        },
    )
}

/// Classic O(mn) fitting edit distance: read global, window start/end free.
fn dp_fitting(read: &[u8], window: &[u8]) -> u32 {
    let m = read.len();
    let mut prev: Vec<u32> = (0..=m as u32).collect();
    let mut cur = vec![0u32; m + 1];
    let mut best = prev[m];
    for j in 1..=window.len() {
        cur[0] = 0;
        for i in 1..=m {
            let sub = prev[i - 1] + u32::from(read[i - 1] != window[j - 1]);
            cur[i] = sub.min(prev[i] + 1).min(cur[i - 1] + 1);
        }
        best = best.min(cur[m]);
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

proptest! {
    #[test]
    fn swar_sw_matches_reference(
        read in rank_seq(60),
        window in rank_seq(90),
        diag in 0usize..12,
        sc in scoring(),
    ) {
        // In-envelope scorings take the SWAR path; the result must be the
        // reference's bit for bit (CIGAR tie-breaks included).
        if !swar::in_envelope(read.len(), window.len(), &sc) {
            return Ok(());
        }
        let fast = swar::fit_align_swar(&read, &window, diag, &sc);
        let slow = fit_align_ref(&read, &window, diag, &sc);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn dispatch_matches_reference_on_any_scoring(
        read in wild_seq(40),
        window in wild_seq(60),
        diag in 0usize..8,
        sc in hostile_scoring(),
    ) {
        // Wild bytes, wild scorings: whichever kernel the dispatcher
        // picks, the public fit_align contract is the reference's.
        let via_dispatch = sw::fit_align(&read, &window, diag, &sc);
        let direct = fit_align_ref(&read, &window, diag, &sc);
        prop_assert_eq!(via_dispatch, direct);
    }

    #[test]
    fn sw_hostile_shapes_stay_clean(
        read in rank_seq(50),
        diag in 0usize..6,
        sc in scoring(),
    ) {
        // Empty window, band 0, read longer than window: a clean Option,
        // never a panic — and any Some consumes the whole read.
        for window in [Vec::new(), vec![0u8; 3], vec![2u8; read.len() / 2]] {
            if let Some(a) = sw::fit_align(&read, &window, diag, &sc) {
                prop_assert_eq!(a.cigar.read_len(), read.len() as u64);
                prop_assert!(a.window_start <= window.len());
            }
        }
    }

    #[test]
    fn myers_matches_dp(read in wild_seq(150), window in wild_seq(200)) {
        if read.is_empty() {
            return Ok(());
        }
        let expect = dp_fitting(&read, &window);
        prop_assert_eq!(myers::fitting_distance(&read, &window, u32::MAX), Some(expect));
        // The cutoff form agrees on both sides of the exact distance.
        prop_assert_eq!(myers::fitting_distance(&read, &window, expect), Some(expect));
        if expect > 0 {
            prop_assert_eq!(myers::fitting_distance(&read, &window, expect - 1), None);
        }
    }

    #[test]
    fn prefilter_never_skips_an_acceptable_candidate(
        read in rank_seq(60),
        window in rank_seq(90),
        diag in 0usize..12,
        sc in scoring(),
        num in 0i64..=100,
    ) {
        // Soundness over arbitrary thresholds: if the DP reaches
        // min_score, the prefilter must have allowed the window.
        let perfect = read.len() as i64 * sc.match_score as i64;
        let min_score = perfect * num / 100;
        let allowed = myers::prefilter_allows(&read, &window, min_score, &sc);
        if let Some(aln) = sw::fit_align(&read, &window, diag, &sc) {
            if aln.score as i64 >= min_score {
                prop_assert!(allowed, "skipped a window scoring {}", aln.score);
            }
        }
    }
}
