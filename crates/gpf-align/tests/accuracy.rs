//! End-to-end aligner accuracy on simulated reads with known truth.

use gpf_align::{BwaMemAligner, SnapAligner};
use gpf_workloads::readsim::{ReadSimulator, SimulatorConfig};
use gpf_workloads::refgen::ReferenceSpec;
use gpf_workloads::variants::{DonorGenome, VariantSpec};

fn setup() -> (gpf_formats::ReferenceGenome, Vec<gpf_workloads::readsim::SimulatedPair>) {
    let reference = ReferenceSpec {
        contig_lengths: vec![120_000, 60_000],
        seed: 2024,
        ..Default::default()
    }
    .generate();
    let donor = DonorGenome::generate(&reference, &VariantSpec::default());
    let cfg = SimulatorConfig {
        coverage: 1.0,
        duplicate_rate: 0.0,
        hotspot_count: 0,
        ..Default::default()
    };
    let pairs = ReadSimulator::new(&reference, &donor, cfg).simulate();
    (reference, pairs)
}

#[test]
fn bwamem_places_most_simulated_pairs_at_truth() {
    let (reference, pairs) = setup();
    let aligner = BwaMemAligner::new(&reference);
    let sample: Vec<_> = pairs.iter().take(150).collect();
    let mut correct = 0usize;
    let mut mapped = 0usize;
    for p in &sample {
        let (r1, _r2) = aligner.align_pair(&p.pair);
        if r1.flags.is_mapped() {
            mapped += 1;
            if r1.contig == p.truth.contig && r1.pos.abs_diff(p.truth.ref_start1) <= 12 {
                correct += 1;
            }
        }
    }
    let map_rate = mapped as f64 / sample.len() as f64;
    let acc = correct as f64 / mapped.max(1) as f64;
    assert!(map_rate > 0.9, "mapped rate {map_rate}");
    assert!(acc > 0.9, "placement accuracy {acc} ({correct}/{mapped})");
}

#[test]
fn bwamem_pairs_are_mostly_proper() {
    let (reference, pairs) = setup();
    let aligner = BwaMemAligner::new(&reference);
    let sample: Vec<_> = pairs.iter().take(100).collect();
    let mut proper = 0usize;
    for p in &sample {
        let (r1, _) = aligner.align_pair(&p.pair);
        if r1.flags.has(gpf_formats::SamFlags::PROPER_PAIR) {
            proper += 1;
        }
    }
    assert!(
        proper as f64 / sample.len() as f64 > 0.75,
        "proper-pair rate {proper}/{}",
        sample.len()
    );
}

#[test]
fn snap_single_end_agrees_with_bwamem() {
    let (reference, pairs) = setup();
    let bwa = BwaMemAligner::new(&reference);
    let snap = SnapAligner::new(&reference);
    let mut agree = 0usize;
    let mut both = 0usize;
    for p in pairs.iter().take(80) {
        let r = &p.pair.r1;
        let a = bwa.align_read(&r.name, &r.seq, &r.qual);
        let b = snap.align_read(&r.name, &r.seq, &r.qual);
        if a.flags.is_mapped() && b.flags.is_mapped() {
            both += 1;
            if a.contig == b.contig && a.pos.abs_diff(b.pos) <= 8 {
                agree += 1;
            }
        }
    }
    assert!(both > 50, "both mapped {both}");
    assert!(agree as f64 / both as f64 > 0.85, "agreement {agree}/{both}");
}
