//! Banded fitting alignment with affine gaps and CIGAR traceback.
//!
//! Aligns a whole read against a reference window: the read is global, the
//! window is local (free leading/trailing reference gaps). This is the
//! "extension" half of seed-and-extend — BWA-MEM's banded Smith–Waterman.
//!
//! Gaps are affine (`gap_open + len × gap_extend`), so a contiguous indel is
//! preferred over the same bases split into several gaps — essential both
//! for alignment quality and for unambiguous variant extraction downstream.

use gpf_formats::cigar::{Cigar, CigarOp};

/// Alignment scoring parameters.
#[derive(Debug, Clone, Copy)]
pub struct Scoring {
    /// Score for a base match.
    pub match_score: i32,
    /// Penalty (negative) for a mismatch.
    pub mismatch: i32,
    /// Penalty (negative) charged once when a gap opens.
    pub gap_open: i32,
    /// Penalty (negative) per gap base.
    pub gap_extend: i32,
    /// Band half-width (must exceed the largest expected indel).
    pub band: usize,
}

impl Default for Scoring {
    fn default() -> Self {
        Self { match_score: 2, mismatch: -3, gap_open: -5, gap_extend: -2, band: 16 }
    }
}

/// Result of a fitting alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Total score.
    pub score: i32,
    /// Offset of the alignment's first reference base within the window.
    pub window_start: usize,
    /// CIGAR over the read (M/I/D only; the caller adds clips).
    pub cigar: Cigar,
    /// Edit distance (mismatches + inserted + deleted bases).
    pub edit_distance: u32,
}

const NEG: i32 = i32::MIN / 4;

/// DP state indices.
const S_M: usize = 0;
const S_X: usize = 1; // gap in reference (read insertion)
const S_Y: usize = 2; // gap in read (reference deletion)

/// Align `read` (0..=3 ranks) against `window` (0..=3 ranks) with free
/// reference end gaps, banded around the diagonal `j ≈ i + diag_offset`.
///
/// Returns `None` when the band never covers a full-read path.
pub fn fit_align(read: &[u8], window: &[u8], diag_offset: usize, sc: &Scoring) -> Option<Alignment> {
    let m = read.len();
    let n = window.len();
    if m == 0 || n == 0 || n + sc.band < m {
        return None;
    }
    let band = sc.band;
    // j counts consumed window characters: 0..=n.
    let lo = |i: usize| (i + diag_offset).saturating_sub(band);
    let hi = |i: usize| (i + diag_offset + band + 1).min(n + 1);
    let width = 2 * band + 1;
    let cells = (m + 1) * width;
    // dp[state][cell], bt[state][cell] = predecessor state + op marker.
    let mut dp = [vec![NEG; cells], vec![NEG; cells], vec![NEG; cells]];
    // bt codes: 0 = invalid/start, 1..=3 = came from state (code-1).
    let mut bt = [vec![0u8; cells], vec![0u8; cells], vec![0u8; cells]];
    let at = |i: usize, j: usize| i * width + (j - lo(i));

    // Row 0: free leading reference gap — start in M with score 0 anywhere.
    for j in lo(0)..hi(0) {
        dp[S_M][at(0, j)] = 0;
    }
    for i in 1..=m {
        for j in lo(i)..hi(i) {
            let cell = at(i, j);
            // M: consume read[i-1] and window[j-1].
            if j >= 1 && j - 1 >= lo(i - 1) && j - 1 < hi(i - 1) {
                let prev = at(i - 1, j - 1);
                let sub = if read[i - 1] == window[j - 1] { sc.match_score } else { sc.mismatch };
                let (mut best, mut from) = (NEG, 0u8);
                for s in [S_M, S_X, S_Y] {
                    if dp[s][prev] > best {
                        best = dp[s][prev];
                        from = s as u8 + 1;
                    }
                }
                if best > NEG {
                    dp[S_M][cell] = best + sub;
                    bt[S_M][cell] = from;
                }
            }
            // X: consume read[i-1] only (insertion to reference).
            if j >= lo(i - 1) && j < hi(i - 1) {
                let prev = at(i - 1, j);
                let open = dp[S_M][prev].saturating_add(sc.gap_open + sc.gap_extend);
                let extend = dp[S_X][prev].saturating_add(sc.gap_extend);
                if open >= extend && open > NEG {
                    dp[S_X][cell] = open;
                    bt[S_X][cell] = S_M as u8 + 1;
                } else if extend > NEG {
                    dp[S_X][cell] = extend;
                    bt[S_X][cell] = S_X as u8 + 1;
                }
            }
            // Y: consume window[j-1] only (deletion from reference).
            if j >= 1 && j - 1 >= lo(i) {
                let prev = at(i, j - 1);
                let open = dp[S_M][prev].saturating_add(sc.gap_open + sc.gap_extend);
                let extend = dp[S_Y][prev].saturating_add(sc.gap_extend);
                if open >= extend && open > NEG {
                    dp[S_Y][cell] = open;
                    bt[S_Y][cell] = S_M as u8 + 1;
                } else if extend > NEG {
                    dp[S_Y][cell] = extend;
                    bt[S_Y][cell] = S_Y as u8 + 1;
                }
            }
        }
    }

    // Best end cell on the last row: M or X states (ending in Y would mean a
    // trailing reference deletion, which the free end gap makes pointless).
    let (mut best, mut j_end, mut s_end) = (NEG, 0usize, S_M);
    for j in lo(m)..hi(m) {
        for s in [S_M, S_X] {
            if dp[s][at(m, j)] > best {
                best = dp[s][at(m, j)];
                j_end = j;
                s_end = s;
            }
        }
    }
    if best <= NEG {
        return None;
    }

    // Traceback.
    let mut ops_rev: Vec<CigarOp> = Vec::with_capacity(m + 8);
    let mut edit = 0u32;
    let (mut i, mut j, mut s) = (m, j_end, s_end);
    while i > 0 {
        let from = bt[s][at(i, j)];
        if from == 0 {
            return None; // band broke the path
        }
        let prev_state = (from - 1) as usize;
        match s {
            S_M => {
                if read[i - 1] != window[j - 1] {
                    edit += 1;
                }
                ops_rev.push(CigarOp::Match);
                i -= 1;
                j -= 1;
            }
            S_X => {
                ops_rev.push(CigarOp::Ins);
                edit += 1;
                i -= 1;
            }
            _ => {
                ops_rev.push(CigarOp::Del);
                edit += 1;
                j -= 1;
            }
        }
        s = prev_state;
    }
    let window_start = j;

    // Run-length encode.
    let mut runs: Vec<(u32, CigarOp)> = Vec::new();
    for op in ops_rev.into_iter().rev() {
        match runs.last_mut() {
            Some((count, last)) if *last == op => *count += 1,
            _ => runs.push((1, op)),
        }
    }
    Some(Alignment { score: best, window_start, cigar: Cigar::from_ops(runs), edit_distance: edit })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranks(s: &[u8]) -> Vec<u8> {
        s.iter().map(|&b| gpf_formats::base::rank4(b)).collect()
    }

    fn align(read: &[u8], window: &[u8], diag: usize) -> Alignment {
        fit_align(&ranks(read), &ranks(window), diag, &Scoring::default()).expect("aligns")
    }

    #[test]
    fn perfect_match() {
        let a = align(b"ACGTACGT", b"TTACGTACGTTT", 2);
        assert_eq!(a.cigar.to_string(), "8M");
        assert_eq!(a.window_start, 2);
        assert_eq!(a.edit_distance, 0);
        assert_eq!(a.score, 16);
    }

    #[test]
    fn single_mismatch() {
        let a = align(b"ACGTACGT", b"TTACGAACGTTT", 2);
        assert_eq!(a.cigar.to_string(), "8M");
        assert_eq!(a.edit_distance, 1);
        assert_eq!(a.score, 7 * 2 - 3);
    }

    #[test]
    fn deletion_from_reference() {
        let read = b"ACGTACGT";
        let window = b"GGACGTGGACGTCC"; // window has GG inserted vs read
        let a = align(read, window, 2);
        assert_eq!(a.cigar.to_string(), "4M2D4M");
        assert_eq!(a.edit_distance, 2);
        assert_eq!(a.score, 8 * 2 - 5 - 2 * 2);
    }

    #[test]
    fn insertion_to_reference() {
        let read = b"ACGTTTACGT";
        let window = b"GGACGTACGTCC";
        let a = align(read, window, 2);
        assert_eq!(a.edit_distance, 2);
        assert_eq!(a.cigar.read_len(), 10);
        assert_eq!(a.cigar.ref_span(), 8);
        let inserted: u32 = a
            .cigar
            .0
            .iter()
            .filter(|(_, op)| *op == CigarOp::Ins)
            .map(|&(count, _)| count)
            .sum();
        assert_eq!(inserted, 2);
        assert_eq!(a.score, 8 * 2 - 5 - 2 * 2);
    }

    #[test]
    fn affine_gaps_stay_contiguous() {
        // A 5-base deletion must come out as one 5D op, not split gaps.
        let read: Vec<u8> = [&b"ACGTACGTCCGGAAT"[..], &b"TGCATGCAGGCCTTA"[..]].concat();
        let window: Vec<u8> =
            [&b"ACGTACGTCCGGAAT"[..], &b"GGGTC"[..], &b"TGCATGCAGGCCTTA"[..]].concat();
        let a = align(&read, &window, 0);
        assert_eq!(a.cigar.to_string(), "15M5D15M");
        assert_eq!(a.edit_distance, 5);
    }

    #[test]
    fn window_start_is_free() {
        let a = align(b"CCCC", b"AAAAAACCCC", 0);
        assert_eq!(a.window_start, 6);
        assert_eq!(a.cigar.to_string(), "4M");
    }

    #[test]
    fn cigar_consumes_whole_read() {
        let reads: [&[u8]; 3] = [b"ACGT", b"ACGTACGTAC", b"TTTTTTT"];
        for read in reads {
            let window: Vec<u8> = [b"GG".as_slice(), read, b"GG".as_slice()].concat();
            let a = align(read, &window, 2);
            assert_eq!(a.cigar.read_len(), read.len() as u64);
        }
    }

    #[test]
    fn too_small_window_returns_none() {
        let r = ranks(b"ACGTACGTACGTACGTACGTACGTACGTACGT");
        let w = ranks(b"ACG");
        assert!(fit_align(&r, &w, 0, &Scoring::default()).is_none());
    }

    #[test]
    fn empty_inputs_return_none() {
        assert!(fit_align(&[], &[0, 1], 0, &Scoring::default()).is_none());
        assert!(fit_align(&[0], &[], 0, &Scoring::default()).is_none());
    }

    #[test]
    fn prefers_mismatch_over_two_gaps() {
        let a = align(b"ACGTACGT", b"ACGAACGT", 0);
        assert_eq!(a.cigar.to_string(), "8M");
        assert_eq!(a.edit_distance, 1);
    }

    #[test]
    fn mismatch_cheaper_than_open_close() {
        // With affine costs a single substitution (−3) must beat an
        // insertion+deletion pair (2 opens = −14).
        let a = align(b"AAAATAAAA", b"CCAAAACAAAACC", 2);
        assert_eq!(a.cigar.to_string(), "9M");
    }
}
