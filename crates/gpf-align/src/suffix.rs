//! Suffix-array construction by prefix doubling.
//!
//! O(n log² n) with low constants — comfortably fast for the multi-megabase
//! synthetic genomes this reproduction indexes, and simple enough to verify
//! against a naive construction in tests. (bwa uses an induced-sorting
//! builder; the produced array is identical, so downstream FM-index
//! behaviour is unaffected by the construction algorithm.)

/// Build the suffix array of `text` (no sentinel required; the empty suffix
/// is not included — ranks cover suffixes starting at `0..text.len()`).
///
/// Ties are resolved as if the text ended with a unique smallest sentinel.
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    // rank[i] = rank of suffix i by its first k characters.
    let mut rank: Vec<i64> = text.iter().map(|&b| b as i64).collect();
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut tmp: Vec<i64> = vec![0; n];
    let mut k = 1usize;
    loop {
        // Sort by (rank[i], rank[i+k]) with -1 beyond the end (sentinel).
        let key = |i: u32| {
            let i = i as usize;
            let second = if i + k < n { rank[i + k] } else { -1 };
            (rank[i], second)
        };
        sa.sort_unstable_by_key(|&i| key(i));
        // Re-rank.
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            tmp[cur as usize] =
                tmp[prev as usize] + if key(prev) == key(cur) { 0 } else { 1 };
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1] as usize] == (n - 1) as i64 {
            break;
        }
        k *= 2;
    }
    sa
}

/// Naive O(n² log n) suffix array for testing.
pub fn suffix_array_naive(text: &[u8]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banana() {
        // Sorted suffixes of "banana":
        // a(5) < ana(3) < anana(1) < banana(0) < na(4) < nana(2).
        assert_eq!(suffix_array(b"banana"), vec![5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn empty_and_single() {
        assert!(suffix_array(b"").is_empty());
        assert_eq!(suffix_array(b"A"), vec![0]);
    }

    #[test]
    fn all_same_character() {
        // "AAAA": shortest suffix sorts first.
        assert_eq!(suffix_array(b"AAAA"), vec![3, 2, 1, 0]);
    }

    #[test]
    fn matches_naive_on_genomic_strings() {
        let texts: [&[u8]; 4] = [
            b"ACGTACGTACGT",
            b"GGGGCCCCAAAATTTT",
            b"ACACACACACACACACAC",
            b"TGCATGCATGCAATCGGCTA",
        ];
        for t in texts {
            assert_eq!(suffix_array(t), suffix_array_naive(t), "text {:?}", std::str::from_utf8(t));
        }
    }

    #[test]
    fn matches_naive_on_pseudorandom() {
        // Deterministic pseudo-random genomic text.
        let mut state = 0x1234_5678u64;
        let text: Vec<u8> = (0..500)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect();
        assert_eq!(suffix_array(&text), suffix_array_naive(&text));
    }

    #[test]
    fn is_a_permutation() {
        let text = b"CTAGCTAGCATCGATCGTAGCTAGCTGATCGATC";
        let sa = suffix_array(text);
        let mut seen = vec![false; text.len()];
        for &i in &sa {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn suffixes_are_sorted() {
        let text = b"GATTACAGATTACAGGGATTACA";
        let sa = suffix_array(text);
        for w in sa.windows(2) {
            assert!(text[w[0] as usize..] < text[w[1] as usize..]);
        }
    }
}
