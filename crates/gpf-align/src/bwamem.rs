//! BWA-MEM-like seed-and-extend aligner over the FM-index.
//!
//! The pipeline stage the paper calls `BwaMemProcess.pairEnd` (Table 2).
//! Algorithmic skeleton, matching bwa-mem's architecture:
//!
//! 1. **Seeding** — exact-match seeds of length `seed_len` taken at a stride
//!    across the read (both orientations) are located through FM-index
//!    backward search; over-repetitive seeds are dropped, exactly like
//!    bwa-mem's `max_occ` filter.
//! 2. **Chaining/voting** — seed hits vote for alignment *diagonals*
//!    (text position − read offset, bucketed to tolerate indels).
//! 3. **Extension** — the best diagonals are verified by banded fitting
//!    alignment ([`crate::sw`]) against a padded reference window.
//! 4. **Scoring** — MAPQ derives from the margin between best and
//!    second-best alignment scores; reads without an acceptable alignment
//!    come back unmapped.
//! 5. **Pairing** — mates are aligned independently, combined with a
//!    proper-pair insert/orientation check, and a failed mate is *rescued*
//!    by a banded search in the window implied by its partner.

use crate::fmindex::FmIndex;
use crate::sw::{fit_align, Scoring};
use gpf_formats::base::{rank4, reverse_complement};
use gpf_formats::cigar::{Cigar, CigarOp};
use gpf_formats::fastq::FastqPair;
use gpf_formats::sam::{SamFlags, SamRecord};
use gpf_formats::{GenomeInterval, ReferenceGenome};
use std::collections::HashMap;

/// Aligner tuning parameters.
#[derive(Debug, Clone)]
pub struct AlignerOptions {
    /// Exact-match seed length.
    pub seed_len: usize,
    /// Stride between seed start offsets.
    pub seed_stride: usize,
    /// Seeds with more hits than this are skipped (repeat filter).
    pub max_seed_hits: usize,
    /// Diagonals to verify by extension, per read.
    pub max_candidates: usize,
    /// Reference padding around a candidate window.
    pub window_pad: usize,
    /// Extension scoring.
    pub scoring: Scoring,
    /// Minimum fraction of the perfect score to accept an alignment.
    pub min_score_frac: f64,
    /// Expected insert size mean (proper-pair check and rescue).
    pub insert_mean: f64,
    /// Expected insert size standard deviation.
    pub insert_sd: f64,
}

impl Default for AlignerOptions {
    fn default() -> Self {
        Self {
            seed_len: 19,
            seed_stride: 11,
            max_seed_hits: 64,
            max_candidates: 8,
            window_pad: 24,
            scoring: Scoring::default(),
            min_score_frac: 0.4,
            insert_mean: 380.0,
            insert_sd: 50.0,
        }
    }
}

/// One verified candidate alignment.
#[derive(Debug, Clone)]
struct Candidate {
    contig: u32,
    pos: u64,
    reverse: bool,
    score: i32,
    cigar: Cigar,
    edit: u32,
}

/// The aligner: FM-index plus options.
pub struct BwaMemAligner {
    index: FmIndex,
    opts: AlignerOptions,
}

impl BwaMemAligner {
    /// Build the index and aligner for a reference genome.
    pub fn new(reference: &ReferenceGenome) -> Self {
        Self::with_options(reference, AlignerOptions::default())
    }

    /// Build with explicit options.
    pub fn with_options(reference: &ReferenceGenome, opts: AlignerOptions) -> Self {
        Self { index: FmIndex::build(reference), opts }
    }

    /// Access the underlying FM-index.
    pub fn index(&self) -> &FmIndex {
        &self.index
    }

    /// Align a single read; returns the best alignment as a [`SamRecord`]
    /// (unmapped record when nothing acceptable is found).
    pub fn align_read(&self, name: &str, seq: &[u8], qual: &[u8]) -> SamRecord {
        let cands = self.candidates(seq);
        self.emit(name, seq, qual, &cands)
    }

    /// Align a pair; returns `(mate1, mate2)` records with mate/pairing
    /// fields filled in.
    pub fn align_pair(&self, pair: &FastqPair) -> (SamRecord, SamRecord) {
        let c1 = self.candidates(&pair.r1.seq);
        let c2 = self.candidates(&pair.r2.seq);
        let mut r1 = self.emit(&pair.r1.name, &pair.r1.seq, &pair.r1.qual, &c1);
        let mut r2 = self.emit(&pair.r2.name, &pair.r2.seq, &pair.r2.qual, &c2);

        // Mate rescue: one mapped, one not -> banded search near the mate.
        if r1.flags.is_mapped() && !r2.flags.is_mapped() {
            if let Some(res) = self.rescue(&r1, &pair.r2.seq) {
                self.apply_rescue(&mut r2, res, &pair.r2.seq, &pair.r2.qual);
            }
        } else if r2.flags.is_mapped() && !r1.flags.is_mapped() {
            if let Some(res) = self.rescue(&r2, &pair.r1.seq) {
                self.apply_rescue(&mut r1, res, &pair.r1.seq, &pair.r1.qual);
            }
        }

        // Pair flags and TLEN.
        r1.flags.set(SamFlags::PAIRED | SamFlags::FIRST_IN_PAIR);
        r2.flags.set(SamFlags::PAIRED | SamFlags::SECOND_IN_PAIR);
        if !r1.flags.is_mapped() {
            r2.flags.set(SamFlags::MATE_UNMAPPED);
        }
        if !r2.flags.is_mapped() {
            r1.flags.set(SamFlags::MATE_UNMAPPED);
        }
        if r1.flags.is_reverse() {
            r2.flags.set(SamFlags::MATE_REVERSE);
        }
        if r2.flags.is_reverse() {
            r1.flags.set(SamFlags::MATE_REVERSE);
        }
        if r1.flags.is_mapped() && r2.flags.is_mapped() {
            r1.mate_contig = r2.contig;
            r1.mate_pos = r2.pos;
            r2.mate_contig = r1.contig;
            r2.mate_pos = r1.pos;
            if r1.contig == r2.contig {
                let left = r1.pos.min(r2.pos);
                let right = r1.ref_end().max(r2.ref_end());
                let tlen = (right - left) as i64;
                let max_insert = self.opts.insert_mean + 4.0 * self.opts.insert_sd;
                let proper = r1.flags.is_reverse() != r2.flags.is_reverse()
                    && tlen as f64 <= max_insert;
                if proper {
                    r1.flags.set(SamFlags::PROPER_PAIR);
                    r2.flags.set(SamFlags::PROPER_PAIR);
                }
                if r1.pos <= r2.pos {
                    r1.tlen = tlen;
                    r2.tlen = -tlen;
                } else {
                    r1.tlen = -tlen;
                    r2.tlen = tlen;
                }
            }
        }
        (r1, r2)
    }

    /// Seed both orientations and verify the best diagonals.
    fn candidates(&self, seq: &[u8]) -> Vec<Candidate> {
        let mut out = Vec::new();
        for (reverse, oriented) in
            [(false, seq.to_vec()), (true, reverse_complement(seq))]
        {
            // Diagonal votes: (bucketed text diagonal) -> votes.
            let mut votes: HashMap<i64, u32> = HashMap::new();
            let sl = self.opts.seed_len;
            if oriented.len() < sl {
                continue;
            }
            let mut offsets: Vec<usize> =
                (0..=oriented.len() - sl).step_by(self.opts.seed_stride).collect();
            let tail = oriented.len() - sl;
            if offsets.last() != Some(&tail) {
                offsets.push(tail);
            }
            for off in offsets {
                let pattern = &oriented[off..off + sl];
                if pattern.iter().any(|&b| b == b'N') {
                    continue;
                }
                if let Some((lo, hi)) = self.index.backward_search(pattern) {
                    if hi - lo > self.opts.max_seed_hits {
                        continue; // repeat region
                    }
                    for hit in self.index.locate(lo, hi, self.opts.max_seed_hits) {
                        let diag = hit as i64 - off as i64;
                        *votes.entry(diag - diag.rem_euclid(8)).or_insert(0) += 1;
                    }
                }
            }
            // Verify top diagonals.
            let mut ranked: Vec<(i64, u32)> = votes.into_iter().collect();
            ranked.sort_by_key(|&(d, v)| (std::cmp::Reverse(v), d));
            for &(diag, _) in ranked.iter().take(self.opts.max_candidates) {
                if let Some(c) = self.extend(&oriented, diag.max(0) as u64, reverse) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Banded extension of an oriented read at a candidate text diagonal.
    fn extend(&self, oriented: &[u8], text_start: u64, reverse: bool) -> Option<Candidate> {
        let (contig, pos) = self.index.resolve(text_start as u32, 1)?;
        let clen = self.index.contig_len(contig);
        let pad = self.opts.window_pad as u64;
        let w_start = pos.saturating_sub(pad);
        let w_end = (pos + oriented.len() as u64 + pad).min(clen);
        if w_end <= w_start {
            return None;
        }
        let window = self.index.contig_window(GenomeInterval::new(contig, w_start, w_end));
        let read_ranks: Vec<u8> = oriented.iter().map(|&b| rank4(b)).collect();
        let diag_offset = (pos - w_start) as usize;
        let perfect = oriented.len() as i32 * self.opts.scoring.match_score;
        let threshold = self.opts.min_score_frac * perfect as f64;
        // Bit-parallel prefilter: skip the affine DP when no path can
        // reach the acceptance threshold (output-preserving — see
        // myers::prefilter_allows).
        if !crate::myers::prefilter_allows(
            &read_ranks,
            window,
            threshold.ceil() as i64,
            &self.opts.scoring,
        ) {
            return None;
        }
        let aln = fit_align(&read_ranks, window, diag_offset, &self.opts.scoring)?;
        if (aln.score as f64) < threshold {
            return None;
        }
        Some(Candidate {
            contig,
            pos: w_start + aln.window_start as u64,
            reverse,
            score: aln.score,
            cigar: aln.cigar,
            edit: aln.edit_distance,
        })
    }

    /// Build the output record from verified candidates.
    fn emit(&self, name: &str, seq: &[u8], qual: &[u8], cands: &[Candidate]) -> SamRecord {
        let mut sorted: Vec<&Candidate> = cands.iter().collect();
        sorted.sort_by_key(|c| (std::cmp::Reverse(c.score), c.contig, c.pos));
        // Deduplicate identical loci (same diagonal found twice).
        sorted.dedup_by_key(|c| (c.contig, c.pos, c.reverse));
        let Some(best) = sorted.first() else {
            return SamRecord::unmapped(name, seq.to_vec(), qual.to_vec());
        };
        let second = sorted.get(1).map(|c| c.score);
        let mapq = match second {
            None => 60,
            Some(s2) => (((best.score - s2) * 6).clamp(0, 60)) as u8,
        };
        let (stored_seq, stored_qual) = if best.reverse {
            let mut q = qual.to_vec();
            q.reverse();
            (reverse_complement(seq), q)
        } else {
            (seq.to_vec(), qual.to_vec())
        };
        let mut flags = SamFlags::default();
        if best.reverse {
            flags.set(SamFlags::REVERSE);
        }
        SamRecord {
            name: name.to_string(),
            flags,
            contig: best.contig,
            pos: best.pos,
            mapq,
            cigar: best.cigar.clone(),
            mate_contig: gpf_formats::sam::NO_CONTIG,
            mate_pos: 0,
            tlen: 0,
            seq: stored_seq,
            qual: stored_qual,
            read_group: 1,
            edit_distance: best.edit as u16,
        }
    }

    /// Try to place an unmapped mate near its mapped partner.
    fn rescue(&self, anchor: &SamRecord, mate_seq: &[u8]) -> Option<Candidate> {
        let clen = self.index.contig_len(anchor.contig);
        let span = (self.opts.insert_mean + 4.0 * self.opts.insert_sd) as u64;
        // The mate should be on the opposite strand, within the insert span.
        let (w_start, w_end, mate_reverse) = if anchor.flags.is_reverse() {
            (anchor.ref_end().saturating_sub(span), anchor.ref_end().min(clen), false)
        } else {
            (anchor.pos, (anchor.pos + span).min(clen), true)
        };
        if w_end <= w_start + mate_seq.len() as u64 / 2 {
            return None;
        }
        let oriented =
            if mate_reverse { reverse_complement(mate_seq) } else { mate_seq.to_vec() };
        let window =
            self.index.contig_window(GenomeInterval::new(anchor.contig, w_start, w_end));
        let read_ranks: Vec<u8> = oriented.iter().map(|&b| rank4(b)).collect();
        let perfect = oriented.len() as i32 * self.opts.scoring.match_score;
        let threshold = self.opts.min_score_frac * perfect as f64;
        // One bit-parallel prefilter covers the whole diagonal scan: the
        // fitting distance is diagonal-independent, so if no path anywhere
        // in the window can reach the threshold, every banded attempt
        // below would be rejected too.
        if !crate::myers::prefilter_allows(
            &read_ranks,
            window,
            threshold.ceil() as i64,
            &self.opts.scoring,
        ) {
            return None;
        }
        // A wide band is unnecessary: scan the window by trying several
        // diagonal offsets.
        let mut best: Option<Candidate> = None;
        let step = (self.opts.scoring.band).max(8);
        let mut diag = 0usize;
        while diag + oriented.len() / 2 < window.len() {
            if let Some(aln) = fit_align(&read_ranks, window, diag, &self.opts.scoring) {
                if (aln.score as f64) >= threshold
                    && best.as_ref().map_or(true, |b| aln.score > b.score)
                {
                    best = Some(Candidate {
                        contig: anchor.contig,
                        pos: w_start + aln.window_start as u64,
                        reverse: mate_reverse,
                        score: aln.score,
                        cigar: aln.cigar,
                        edit: aln.edit_distance,
                    });
                }
            }
            diag += step;
        }
        best
    }

    /// Overwrite an unmapped record with a rescued alignment.
    fn apply_rescue(&self, rec: &mut SamRecord, res: Candidate, seq: &[u8], qual: &[u8]) {
        rec.flags.clear(SamFlags::UNMAPPED);
        if res.reverse {
            rec.flags.set(SamFlags::REVERSE);
            rec.seq = reverse_complement(seq);
            let mut q = qual.to_vec();
            q.reverse();
            rec.qual = q;
        }
        rec.contig = res.contig;
        rec.pos = res.pos;
        rec.mapq = 20; // rescued placements get modest confidence
        rec.cigar = res.cigar;
        rec.edit_distance = res.edit as u16;
    }
}

/// Count soft-clippable low-score tails — exposed for tests of CIGAR shape.
pub fn has_only_mid(cigar: &Cigar) -> bool {
    cigar.0.iter().all(|(_, op)| matches!(op, CigarOp::Match | CigarOp::Ins | CigarOp::Del))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpf_formats::quality::phred_to_char;

    fn reference() -> ReferenceGenome {
        // Deterministic pseudo-random 6kb genome over two contigs.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut gen = |n: usize| -> Vec<u8> {
            (0..n)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    b"ACGT"[(state >> 33) as usize % 4]
                })
                .collect()
        };
        ReferenceGenome::from_contigs(vec![("chr1", gen(4000)), ("chr2", gen(2000))])
    }

    fn quals(n: usize) -> Vec<u8> {
        vec![phred_to_char(35); n]
    }

    #[test]
    fn aligns_exact_read_to_its_locus() {
        let r = reference();
        let aligner = BwaMemAligner::new(&r);
        let read = r.contig_seq(0)[500..600].to_vec();
        let rec = aligner.align_read("r1", &read, &quals(100));
        assert!(rec.flags.is_mapped());
        assert_eq!(rec.contig, 0);
        assert_eq!(rec.pos, 500);
        assert_eq!(rec.cigar.to_string(), "100M");
        assert_eq!(rec.edit_distance, 0);
        assert!(rec.mapq >= 30);
    }

    #[test]
    fn aligns_reverse_complement_read() {
        let r = reference();
        let aligner = BwaMemAligner::new(&r);
        let fwd = r.contig_seq(1)[300..400].to_vec();
        let read = reverse_complement(&fwd);
        let rec = aligner.align_read("r2", &read, &quals(100));
        assert!(rec.flags.is_mapped());
        assert!(rec.flags.is_reverse());
        assert_eq!(rec.contig, 1);
        assert_eq!(rec.pos, 300);
        // Stored sequence is the reference-forward orientation.
        assert_eq!(rec.seq, fwd);
    }

    #[test]
    fn tolerates_mismatches() {
        let r = reference();
        let aligner = BwaMemAligner::new(&r);
        let mut read = r.contig_seq(0)[1000..1100].to_vec();
        for i in [10usize, 40, 90] {
            read[i] = match read[i] {
                b'A' => b'C',
                _ => b'A',
            };
        }
        let rec = aligner.align_read("r3", &read, &quals(100));
        assert!(rec.flags.is_mapped());
        assert_eq!(rec.pos, 1000);
        assert!(rec.edit_distance >= 2, "edit {}", rec.edit_distance);
    }

    #[test]
    fn tolerates_small_deletion() {
        let r = reference();
        let aligner = BwaMemAligner::new(&r);
        // Read skips 3 reference bases in the middle.
        let mut read = r.contig_seq(0)[2000..2050].to_vec();
        read.extend_from_slice(&r.contig_seq(0)[2053..2103]);
        let rec = aligner.align_read("r4", &read, &quals(100));
        assert!(rec.flags.is_mapped());
        assert_eq!(rec.pos, 2000);
        assert!(rec.cigar.has_indel(), "cigar {}", rec.cigar);
        assert_eq!(rec.cigar.ref_span(), 103);
    }

    #[test]
    fn garbage_read_is_unmapped() {
        let r = reference();
        let aligner = BwaMemAligner::new(&r);
        // A read that matches nothing (alternating pattern absent in the
        // pseudo-random genome at this length).
        let read: Vec<u8> = (0..100).map(|i| if i % 2 == 0 { b'A' } else { b'C' }).collect();
        let rec = aligner.align_read("junk", &read, &quals(100));
        // Either unmapped or very low quality.
        assert!(!rec.flags.is_mapped() || rec.mapq < 10 || rec.edit_distance > 20);
    }

    #[test]
    fn pair_alignment_sets_mate_fields() {
        let r = reference();
        let aligner = BwaMemAligner::new(&r);
        let frag = &r.contig_seq(0)[800..1180];
        let r1 = fastq_record_new("p/1", &frag[..100]);
        let r2 = fastq_record_new("p/2", &reverse_complement(&frag[280..380]));
        let pair = FastqPair::new(r1, r2).unwrap();
        let (a, b) = aligner.align_pair(&pair);
        assert!(a.flags.is_mapped() && b.flags.is_mapped());
        assert!(a.flags.has(SamFlags::PROPER_PAIR), "proper pair");
        assert_eq!(a.pos, 800);
        assert_eq!(b.pos, 1080);
        assert_eq!(a.mate_pos, b.pos);
        assert_eq!(a.tlen, 380);
        assert_eq!(b.tlen, -380);
        assert!(a.flags.has(SamFlags::FIRST_IN_PAIR));
        assert!(b.flags.has(SamFlags::SECOND_IN_PAIR));
        assert!(a.flags.has(SamFlags::MATE_REVERSE));
    }

    fn fastq_record_new(name: &str, seq: &[u8]) -> gpf_formats::FastqRecord {
        gpf_formats::FastqRecord::new(name, seq, &quals(seq.len())).unwrap()
    }

    #[test]
    fn mate_rescue_places_damaged_mate() {
        let r = reference();
        let aligner = BwaMemAligner::new(&r);
        let frag = &r.contig_seq(0)[1500..1880];
        // Mate 2 heavily corrupted in its seed region but still >60% intact.
        let mut m2 = reverse_complement(&frag[280..380]);
        for i in (0..m2.len()).step_by(5) {
            m2[i] = match m2[i] {
                b'A' => b'G',
                _ => b'A',
            };
        }
        let pair = FastqPair::new(fastq_record_new("q/1", &frag[..100]), {
            gpf_formats::FastqRecord::new("q/2", &m2, &quals(100)).unwrap()
        })
        .unwrap();
        let (a, b) = aligner.align_pair(&pair);
        assert!(a.flags.is_mapped());
        // Rescue should place mate 2 on chr1 near 1780 (or leave it unmapped
        // if the damage is too heavy — but never on another contig).
        if b.flags.is_mapped() {
            assert_eq!(b.contig, 0);
            assert!(b.pos.abs_diff(1780) < 40, "rescued at {}", b.pos);
        }
    }

    #[test]
    fn repeat_reads_get_low_mapq() {
        // Build a genome with an exact 300bp repeat at two loci.
        let mut state = 77u64;
        let mut gen = |n: usize| -> Vec<u8> {
            (0..n)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                    b"ACGT"[(state >> 33) as usize % 4]
                })
                .collect()
        };
        let unique1 = gen(1000);
        let repeat = gen(300);
        let unique2 = gen(1000);
        let seq = [unique1, repeat.clone(), unique2, repeat.clone()].concat();
        let r = ReferenceGenome::from_contigs(vec![("chr1", seq)]);
        let aligner = BwaMemAligner::new(&r);
        let read = repeat[100..200].to_vec();
        let rec = aligner.align_read("rep", &read, &quals(100));
        assert!(rec.flags.is_mapped());
        assert_eq!(rec.mapq, 0, "ambiguous read must have MAPQ 0");
    }
}
