//! Lane-parallel banded Smith–Waterman: four 16-bit band lanes per u64.
//!
//! The band of [`super::fit_align`]'s DP has constant width `2·band + 1`,
//! and in band coordinates every cell of row `i` depends only on row `i−1`
//! (for M and X) shifted by the band drift `s_i = lo(i) − lo(i−1) ∈ {0, 1}`,
//! plus the in-row Y chain. That makes a row-per-sweep SWAR formulation
//! possible with plain u64 arithmetic — no `std::simd`, no intrinsics:
//!
//! - **Lane layout.** Band lane `c` (window column `j = lo(i) + c`) lives in
//!   bits `16·(c mod 4)..` of word `c / 4`. Values are stored *biased*:
//!   `stored = value + 0x4000`, with `0` reserved as the dead-lane sentinel
//!   (the reference's `NEG`). Each row keeps one zero pad word on both
//!   sides so lane shifts can read across word boundaries branch-free.
//! - **Guard-bit compare.** With all live lanes in `[1, 0x7F00]`, bit 15 of
//!   every lane is free, so `((a | 0x8000·) − b) & 0x8000·` computes a
//!   per-lane `a ≥ b` without cross-lane borrows; expanding that bit to a
//!   full lane mask gives branch-free per-lane max. Dead lanes (0) lose
//!   every max against live lanes — exactly `NEG` semantics.
//! - **M and X rows** read the previous row's words at lane offset
//!   `s_i − 1` / `s_i` (an aligned read or a one-lane funnel shift) and
//!   apply the substitution / gap deltas to all four lanes at once.
//! - **Y row (in-row chain).** `Y(c) = max(M(c−1)+go+ge, Y(c−1)+ge)`
//!   unrolls to `Y(c) = max_{k<c} [A(k) + ge·(c−1−k)]` with
//!   `A(k) = M(k)+go+ge`. Adding the ramp `r_k = |ge|·k` turns that into a
//!   plain running max: `Y(c) = (max_{k<c} [A(k)+r_k]) − r_{c−1}` — an
//!   exclusive prefix max computed in log-steps per word (`x = max(x, x≪16)`,
//!   `x = max(x, x≪32)`) with a scalar carry between words.
//! - **Traceback by recompute.** The kernel stores the biased dp matrices
//!   for all rows and no backtrack codes; traceback re-derives the
//!   reference kernel's decision at each cell from the stored values using
//!   the *same* comparison order and band-range conditions, so tie-breaks —
//!   and therefore the CIGAR — are identical, not merely score-equivalent.
//!
//! [`in_envelope`] gates all of this: the scoring's worst-case dynamic
//! range (longest path × largest step, plus the Y ramp) must fit the biased
//! 16-bit range, and gap deltas must be non-positive so dead lanes are
//! *exactly* the reference's `NEG` cells (a positive gap delta would let
//! the reference store `NEG + δ` values that the sentinel cannot mirror).
//! Out-of-envelope calls fall back to [`super::reference::fit_align_ref`].

use super::{Alignment, Scoring, NEG, S_M, S_X, S_Y};
use gpf_formats::cigar::{Cigar, CigarOp};

const LANES: usize = 4;
const BIAS: i64 = 0x4000;
const LANE_MASK: u64 = 0xFFFF;
const ONES: u64 = 0x0001_0001_0001_0001;
const SIGN: u64 = 0x8000_8000_8000_8000;
/// Live biased values stay within `BIAS ± SPAN_LIMIT ⊆ [256, 0x7F00]`,
/// keeping bit 15 free for the guard-bit compare and one more step of
/// headroom below `0xFFFF` for the pre-max additions.
const SPAN_LIMIT: i64 = 0x3F00;

#[inline(always)]
fn bcast(v: u16) -> u64 {
    (v as u64) * ONES
}

/// Expand each lane's bit 15 into a full `0xFFFF`/`0x0000` lane mask.
#[inline(always)]
fn expand_sign(x: u64) -> u64 {
    ((x >> 15) & ONES) * LANE_MASK
}

/// Per-lane `a ≥ b` mask. Requires every lane of both operands ≤ `0x7FFF`
/// (`expand_sign` reads only bit 15, so no post-subtract masking needed).
#[inline(always)]
fn ge_mask(a: u64, b: u64) -> u64 {
    expand_sign((a | SIGN).wrapping_sub(b))
}

/// Per-lane max; ties pick `a`. Requires lanes ≤ `0x7FFF`.
#[inline(always)]
fn max16(a: u64, b: u64) -> u64 {
    let keep_a = ge_mask(a, b);
    (a & keep_a) | (b & !keep_a)
}

/// Subtract a per-lane non-negative `delta` from every live lane; dead
/// lanes stay dead. Setting bit 15 before the subtraction makes the lane
/// self-masking: a live lane keeps bit 15 (the envelope guarantees
/// `live − delta ≥ 0x100 > 0` and `live − delta ≤ 0x7F00`), a dead lane
/// drops it for `delta ≥ 1`. The mask `s − (s ≫ 15)` expands each kept
/// sign bit to `0x7FFF`, which simultaneously selects live lanes and
/// strips the marker bit — including the `delta = 0` dead case, where
/// `d = 0x8000` masks to 0. No borrow crosses a lane because every lane
/// satisfies `(x | 0x8000) ≥ delta`.
#[inline(always)]
fn subs(x: u64, delta: u64) -> u64 {
    let d = (x | SIGN).wrapping_sub(delta);
    let s = d & SIGN;
    d & (s - (s >> 15))
}

/// Word `w` of a row read with every lane shifted up by one (target lane
/// `l` takes source lane `l−1`); `row` is the padded row slice, `w` a data
/// word index (`row[w]` is the previous word thanks to the leading pad).
#[inline(always)]
fn read_shift_up(row: &[u64], w: usize) -> u64 {
    (row[w + 1] << 16) | (row[w] >> 48)
}

/// Word `w` read with every lane shifted down by one (target lane `l`
/// takes source lane `l+1`); the trailing pad covers the last word.
#[inline(always)]
fn read_shift_down(row: &[u64], w: usize) -> u64 {
    (row[w + 1] >> 16) | (row[w + 2] << 48)
}

/// `true` when the SWAR kernel reproduces the reference exactly for this
/// input shape and scoring: gap deltas non-positive (dead-lane sentinel
/// equals `NEG` semantics) and the worst-case dynamic range — longest
/// path × largest step plus the Y ramp — inside the biased 16-bit span.
pub fn in_envelope(m: usize, n: usize, sc: &Scoring) -> bool {
    let ge = sc.gap_extend as i64;
    let go_ge = sc.gap_open as i64 + ge;
    if ge > 0 || go_ge > 0 {
        return false;
    }
    let p_max = (sc.match_score as i64)
        .abs()
        .max((sc.mismatch as i64).abs())
        .max(-go_ge)
        .max(-ge);
    let Some(width) = sc.band.checked_mul(2).and_then(|b| b.checked_add(1)) else {
        return false;
    };
    if width > 1 << 20 || m >= 1 << 20 || n >= 1 << 20 {
        return false;
    }
    let span = (m as i64 + n as i64 + 3) * p_max + 2 * width as i64 * (-ge) + p_max;
    span <= SPAN_LIMIT
}

/// The packed kernel. Callers must check [`in_envelope`] first; within the
/// envelope this returns exactly what `fit_align_ref` returns, including
/// tie-breaks. See the module docs for the layout and the proof sketch.
pub fn fit_align_swar(
    read: &[u8],
    window: &[u8],
    diag_offset: usize,
    sc: &Scoring,
) -> Option<Alignment> {
    let m = read.len();
    let n = window.len();
    if m == 0 || n == 0 || n + sc.band < m {
        return None;
    }
    let band = sc.band;
    let lo = |i: usize| (i + diag_offset).saturating_sub(band);
    let hi = |i: usize| (i + diag_offset + band + 1).min(n + 1);
    let width = 2 * band + 1;
    let words = width.div_ceil(LANES);
    // One pad word on each side per row; data word w lives at `1 + w`.
    let stride = words + 2;
    let rows = m + 1;
    // One allocation (one memset) for all three state matrices.
    let mut buf = vec![0u64; 3 * rows * stride];
    let (m_mat, rest) = buf.split_at_mut(rows * stride);
    let (x_mat, y_mat) = rest.split_at_mut(rows * stride);

    // Scoring decomposed for lane arithmetic. The envelope guarantees
    // ge ≤ 0 and go+ge ≤ 0; match/mismatch may have either sign.
    let split = |d: i64| -> (u64, u64) {
        if d >= 0 {
            (bcast(d as u16), 0)
        } else {
            (0, bcast((-d) as u16))
        }
    };
    let (mat_p, mat_n) = split(sc.match_score as i64);
    let (mis_p, mis_n) = split(sc.mismatch as i64);
    let ge = sc.gap_extend as i64;
    let go_ge = sc.gap_open as i64 + ge;
    let ext_n = bcast((-ge) as u16);
    let open_n = bcast((-go_ge) as u16);

    // Y-scan ramps: ramp[w] holds r_c = |ge|·c for the word's four lanes,
    // ramp_prev[w] holds r_{c−1} (lane c=0 never consumes its entry — the
    // exclusive prefix max is always dead there).
    let ge_abs = (-ge) as u64;
    let ramp: Vec<u64> = (0..words)
        .map(|w| {
            (0..LANES).fold(0u64, |acc, l| acc | (ge_abs * (w * LANES + l) as u64) << (16 * l))
        })
        .collect();
    let ramp_prev: Vec<u64> = (0..words)
        .map(|w| {
            (0..LANES).fold(0u64, |acc, l| {
                let c = w * LANES + l;
                if c == 0 { acc } else { acc | (ge_abs * (c - 1) as u64) << (16 * l) }
            })
        })
        .collect();

    // Live-lane prefix mask for a row of `live` lanes.
    let row_mask = |live: usize, w: usize| -> u64 {
        let base = w * LANES;
        if live >= base + LANES {
            !0u64
        } else if live <= base {
            0
        } else {
            (1u64 << (16 * (live - base))) - 1
        }
    };

    // Row 0: free leading reference gap — M = 0 (biased) on every band lane.
    {
        let live = hi(0).saturating_sub(lo(0));
        for (w, slot) in m_mat[1..1 + words].iter_mut().enumerate() {
            *slot = bcast(BIAS as u16) & row_mask(live, w);
        }
    }

    // Per-symbol equality tables over *absolute* window columns: for read
    // symbol `s`, lane `j mod 4` of word `j / 4` is `0xFFFF` iff
    // `window[j−1] == s` (column 0 and out-of-range columns stay 0). A
    // row's band word then extracts its four columns with one funnel shift
    // instead of four bounds-checked window probes. Reads with more than
    // `MAX_SYMS` distinct bytes (wild-byte inputs; never rank data) keep
    // the scalar probe path.
    const MAX_SYMS: usize = 12;
    let eq_words = n / LANES + words + 2;
    let mut sym_of = [u8::MAX; 256];
    let mut n_syms = 0usize;
    let mut overflow = false;
    for &b in read {
        if sym_of[b as usize] == u8::MAX {
            if n_syms == MAX_SYMS {
                overflow = true;
                break;
            }
            sym_of[b as usize] = n_syms as u8;
            n_syms += 1;
        }
    }
    let mut eq_tables = vec![0u64; if overflow { 0 } else { n_syms * eq_words }];
    if !overflow {
        for (j0, &wb) in window.iter().enumerate() {
            let s = sym_of[wb as usize];
            if s != u8::MAX {
                let j = j0 + 1;
                eq_tables[s as usize * eq_words + j / LANES] |= LANE_MASK << (16 * (j % LANES));
            }
        }
    }

    for i in 1..=m {
        let lo_i = lo(i);
        let live = hi(i).saturating_sub(lo_i);
        if live == 0 {
            // Uncovered row: every lane dead, and the matrices are
            // pre-zeroed — nothing to write.
            continue;
        }
        let drift = lo_i - lo(i - 1); // 0 or 1 — lo is nondecreasing by ≤1
        let rb = read[i - 1];
        let prev_base = (i - 1) * stride;
        let cur_base = i * stride;

        // Split each matrix at the current row: the previous row is read
        // immutably, the current row is written in place (no scratch copy).
        let (m_done, m_rest) = m_mat.split_at_mut(cur_base);
        let prev_m = &m_done[prev_base..prev_base + stride];
        let cur_m = &mut m_rest[..stride];
        let (x_done, x_rest) = x_mat.split_at_mut(cur_base);
        let prev_x = &x_done[prev_base..prev_base + stride];
        let cur_x = &mut x_rest[..stride];
        let (y_done, y_rest) = y_mat.split_at_mut(cur_base);
        let prev_y = &y_done[prev_base..prev_base + stride];
        let cur_y = &mut y_rest[..stride];

        // Funnel-shift parameters for this row's eq-table extraction:
        // band column c maps to absolute column `lo_i + c`, so word `w`
        // starts at table word `k0 + w`, rotated down by `r_sh` bits. The
        // `(x << (63 − r_sh)) << 1` form is a shift-by-64 that stays
        // defined when `r_sh == 0`.
        let k0 = lo_i / LANES;
        let r_sh = (lo_i % LANES) * 16;
        // Row-scoped sub-slices with lengths LLVM can tie to the loop
        // bounds below, so the hot loop carries no bounds checks.
        let eq_row = if overflow {
            &[][..]
        } else {
            let s = sym_of[rb as usize] as usize * eq_words;
            &eq_tables[s + k0..s + k0 + words + 1]
        };
        let ramp_r = &ramp[..words];
        let rp_r = &ramp_prev[..words];

        // One fused pass per word: M and X from row i−1, then the Y chain
        // (ramped exclusive prefix max over A(c) = M(i, c) + go + ge) on
        // the just-computed M word, with a scalar carry between words.
        // Words are split into fully-live (`mask` folds to `!0`) and one
        // partial tail word; words past `live` stay at their pre-zeroed
        // dead state.
        let wfull = (live / LANES).min(words);
        let tail = live % LANES;
        let mut carry: u64 = 0; // biased max of B over all earlier lanes
        let mut do_word = |w: usize, mask: u64, carry: &mut u64| {
            // M: best of M/X/Y at (i−1, j−1), i.e. prev lane c + drift − 1.
            let (dm, dx, dy) = if drift == 0 {
                (read_shift_up(prev_m, w), read_shift_up(prev_x, w), read_shift_up(prev_y, w))
            } else {
                (prev_m[w + 1], prev_x[w + 1], prev_y[w + 1])
            };
            let best = max16(max16(dm, dx), dy);
            // Equality mask over the word's four window columns.
            let eqm = if overflow {
                let jbase = lo_i + w * LANES;
                let mut acc = 0u64;
                for l in 0..LANES {
                    let j = jbase + l;
                    if j >= 1 && j <= n && window[j - 1] == rb {
                        acc |= LANE_MASK << (16 * l);
                    }
                }
                acc
            } else {
                (eq_row[w] >> r_sh) | ((eq_row[w + 1] << (63 - r_sh)) << 1)
            };
            let pos = mis_p ^ ((mat_p ^ mis_p) & eqm);
            let neg = mis_n ^ ((mat_n ^ mis_n) & eqm);
            // M = best + (pos − neg); dead lanes stay dead. Bit 15 marks
            // each lane, neg is subtracted first so no lane ever borrows
            // (`(best | 0x8000) − neg ≥ 0x4100`), and `lm` — `0x7FFF` on
            // live in-row lanes of `best` — strips the marker and kills
            // dead and out-of-row lanes in one AND. On live lanes the
            // result `best − neg + pos ≤ 0x7F00` never disturbs the marker.
            let lb = best.wrapping_add(bcast(0x7F00)) & SIGN;
            let lm = (lb - (lb >> 15)) & mask;
            let word_m = ((best | SIGN) - neg).wrapping_add(pos) & lm;
            cur_m[1 + w] = word_m;
            // X: gap in reference — prev row, same j, i.e. lane c + drift.
            let (gm, gx) = if drift == 0 {
                (prev_m[w + 1], prev_x[w + 1])
            } else {
                (read_shift_down(prev_m, w), read_shift_down(prev_x, w))
            };
            cur_x[1 + w] = max16(subs(gm, open_n), subs(gx, ext_n)) & mask;
            // Y from the M word just produced: B(c) = M − (go+ge) + ramp
            // on live lanes, reusing `lm` (word_m's live mask — liveness
            // survives the subtraction by the envelope's one-step
            // headroom, and the `+ ramp ≤ 0x7F00` bound keeps bit 15 the
            // marker).
            let b = ((word_m | SIGN) - open_n).wrapping_add(ramp_r[w]) & lm;
            let x0 = (b << 16) | *carry;
            let x1 = max16(x0, x0 << 16);
            let p = max16(x1, x1 << 32);
            cur_y[1 + w] = subs(p, rp_r[w]) & mask;
            // The top lanes of `p` and `b` are plain scalars — a pair of
            // `u64::max`es replaces a lane max on the carried chain.
            *carry = (p >> 48).max(b >> 48);
        };
        for w in 0..wfull {
            do_word(w, !0, &mut carry);
        }
        if tail != 0 {
            do_word(wfull, (1u64 << (16 * tail)) - 1, &mut carry);
        }
    }

    // Biased matrix accessor with NEG semantics for dead lanes.
    let mats: [&[u64]; 3] = [m_mat, x_mat, y_mat];
    let get = |s: usize, i: usize, c: usize| -> i64 {
        let word = mats[s][i * stride + 1 + c / LANES];
        let lane = (word >> (16 * (c % LANES))) & LANE_MASK;
        if lane == 0 { NEG as i64 } else { lane as i64 - BIAS }
    };

    // Best end cell on the last row — same scan order as the reference.
    let neg = NEG as i64;
    let (mut best, mut j_end, mut s_end) = (neg, 0usize, S_M);
    for j in lo(m)..hi(m) {
        for s in [S_M, S_X] {
            let v = get(s, m, j - lo(m));
            if v > best {
                best = v;
                j_end = j;
                s_end = s;
            }
        }
    }
    if best <= neg {
        return None;
    }

    // Traceback: re-derive the reference's backtrack decision at each cell
    // from the stored values, with identical comparison order.
    let mut ops_rev: Vec<CigarOp> = Vec::with_capacity(m + 8);
    let mut edit = 0u32;
    let (mut i, mut j, mut s) = (m, j_end, s_end);
    while i > 0 {
        let from: u8 = match s {
            S_M => {
                if j >= 1 && j - 1 >= lo(i - 1) && j - 1 < hi(i - 1) {
                    let cp = j - 1 - lo(i - 1);
                    let (mut b, mut f) = (neg, 0u8);
                    for ps in [S_M, S_X, S_Y] {
                        let v = get(ps, i - 1, cp);
                        if v > b {
                            b = v;
                            f = ps as u8 + 1;
                        }
                    }
                    f
                } else {
                    0
                }
            }
            S_X => {
                if j >= lo(i - 1) && j < hi(i - 1) {
                    let cp = j - lo(i - 1);
                    let open = get(S_M, i - 1, cp) + go_ge;
                    let extend = get(S_X, i - 1, cp) + ge;
                    if open >= extend && open > neg {
                        S_M as u8 + 1
                    } else if extend > neg {
                        S_X as u8 + 1
                    } else {
                        0
                    }
                } else {
                    0
                }
            }
            _ => {
                if j >= 1 && j - 1 >= lo(i) {
                    let cp = j - 1 - lo(i);
                    let open = get(S_M, i, cp) + go_ge;
                    let extend = get(S_Y, i, cp) + ge;
                    if open >= extend && open > neg {
                        S_M as u8 + 1
                    } else if extend > neg {
                        S_Y as u8 + 1
                    } else {
                        0
                    }
                } else {
                    0
                }
            }
        };
        if from == 0 {
            return None; // band broke the path
        }
        let prev_state = (from - 1) as usize;
        match s {
            S_M => {
                if read[i - 1] != window[j - 1] {
                    edit += 1;
                }
                ops_rev.push(CigarOp::Match);
                i -= 1;
                j -= 1;
            }
            S_X => {
                ops_rev.push(CigarOp::Ins);
                edit += 1;
                i -= 1;
            }
            _ => {
                ops_rev.push(CigarOp::Del);
                edit += 1;
                j -= 1;
            }
        }
        s = prev_state;
    }
    let window_start = j;

    let mut runs: Vec<(u32, CigarOp)> = Vec::new();
    for op in ops_rev.into_iter().rev() {
        match runs.last_mut() {
            Some((count, last)) if *last == op => *count += 1,
            _ => runs.push((1, op)),
        }
    }
    Some(Alignment {
        score: best as i32,
        window_start,
        cigar: Cigar::from_ops(runs),
        edit_distance: edit,
    })
}

#[cfg(test)]
mod tests {
    use super::super::reference::fit_align_ref;
    use super::*;

    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn rand_seq(state: &mut u64, len: usize) -> Vec<u8> {
        (0..len).map(|_| (lcg(state) % 4) as u8).collect()
    }

    #[test]
    fn matches_reference_on_random_inputs() {
        let mut st = 0xfeed_u64;
        let scorings = [
            Scoring::default(),
            Scoring { band: 0, ..Scoring::default() },
            Scoring { band: 3, ..Scoring::default() },
            Scoring { match_score: 1, mismatch: -1, gap_open: -3, gap_extend: -1, band: 8 },
            Scoring { match_score: 5, mismatch: 0, gap_open: -7, gap_extend: -2, band: 5 },
            Scoring { match_score: 0, mismatch: -2, gap_open: -2, gap_extend: 0, band: 4 },
        ];
        for round in 0..200 {
            let sc = &scorings[round % scorings.len()];
            let m = 1 + (lcg(&mut st) % 40) as usize;
            let n = 1 + (lcg(&mut st) % 60) as usize;
            let diag = (lcg(&mut st) % 8) as usize;
            let read = rand_seq(&mut st, m);
            let window = rand_seq(&mut st, n);
            assert!(in_envelope(m, n, sc), "round {round}");
            let fast = fit_align_swar(&read, &window, diag, sc);
            let slow = fit_align_ref(&read, &window, diag, sc);
            assert_eq!(fast, slow, "round {round} sc={sc:?} read={read:?} window={window:?}");
        }
    }

    #[test]
    fn envelope_rejects_wide_scores_and_positive_gaps() {
        let sc = Scoring::default();
        assert!(in_envelope(150, 300, &sc));
        assert!(!in_envelope(1 << 14, 1 << 14, &sc)); // range overflow
        assert!(!in_envelope(10, 10, &Scoring { match_score: 30_000, ..sc }));
        assert!(!in_envelope(10, 10, &Scoring { gap_extend: 1, ..sc }));
        assert!(!in_envelope(10, 10, &Scoring { gap_open: 5, gap_extend: -1, ..sc }));
        // go+ge = 0 is still exact (nothing escapes a dead lane).
        assert!(in_envelope(10, 10, &Scoring { gap_open: 2, gap_extend: -2, ..sc }));
    }

    #[test]
    fn wide_band_saturated_lo_matches_reference() {
        // lo(i) saturates at 0 for the first rows: drift 0 then 1.
        let mut st = 7u64;
        let read = rand_seq(&mut st, 30);
        let window = rand_seq(&mut st, 35);
        let sc = Scoring { band: 20, ..Scoring::default() };
        assert_eq!(
            fit_align_swar(&read, &window, 0, &sc),
            fit_align_ref(&read, &window, 0, &sc)
        );
    }

    #[test]
    fn uncovered_band_is_none_in_both() {
        // diag offset pushes the band past the window end quickly.
        let read = vec![0u8; 20];
        let window = vec![1u8; 25];
        let sc = Scoring { band: 2, ..Scoring::default() };
        let fast = fit_align_swar(&read, &window, 24, &sc);
        let slow = fit_align_ref(&read, &window, 24, &sc);
        assert_eq!(fast, slow);
    }
}
