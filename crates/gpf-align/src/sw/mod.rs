//! Banded fitting alignment with affine gaps and CIGAR traceback.
//!
//! Aligns a whole read against a reference window: the read is global, the
//! window is local (free leading/trailing reference gaps). This is the
//! "extension" half of seed-and-extend — BWA-MEM's banded Smith–Waterman.
//!
//! Gaps are affine (`gap_open + len × gap_extend`), so a contiguous indel is
//! preferred over the same bases split into several gaps — essential both
//! for alignment quality and for unambiguous variant extraction downstream.
//!
//! Two kernels compute the same DP. [`swar`] packs four 16-bit band lanes
//! into each u64 accumulator and fills a row per sweep; [`reference`] is the
//! original cell-at-a-time seed kernel, retained verbatim. [`fit_align`]
//! dispatches to the SWAR kernel whenever the scoring fits its 16-bit
//! envelope ([`swar::in_envelope`]) and falls back to the reference
//! otherwise, so results are identical on every input — the differential
//! proptests in `tests/kernel_differential.rs` pin score, CIGAR,
//! `window_start`, and edit distance to the reference bit for bit.

pub mod reference;
pub mod swar;

use gpf_formats::cigar::Cigar;

/// Alignment scoring parameters.
#[derive(Debug, Clone, Copy)]
pub struct Scoring {
    /// Score for a base match.
    pub match_score: i32,
    /// Penalty (negative) for a mismatch.
    pub mismatch: i32,
    /// Penalty (negative) charged once when a gap opens.
    pub gap_open: i32,
    /// Penalty (negative) per gap base.
    pub gap_extend: i32,
    /// Band half-width (must exceed the largest expected indel).
    pub band: usize,
}

impl Default for Scoring {
    fn default() -> Self {
        Self { match_score: 2, mismatch: -3, gap_open: -5, gap_extend: -2, band: 16 }
    }
}

/// Result of a fitting alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Total score.
    pub score: i32,
    /// Offset of the alignment's first reference base within the window.
    pub window_start: usize,
    /// CIGAR over the read (M/I/D only; the caller adds clips).
    pub cigar: Cigar,
    /// Edit distance (mismatches + inserted + deleted bases).
    pub edit_distance: u32,
}

const NEG: i32 = i32::MIN / 4;

/// DP state indices.
const S_M: usize = 0;
const S_X: usize = 1; // gap in reference (read insertion)
const S_Y: usize = 2; // gap in read (reference deletion)

/// Align `read` (0..=3 ranks) against `window` (0..=3 ranks) with free
/// reference end gaps, banded around the diagonal `j ≈ i + diag_offset`.
///
/// Returns `None` when the band never covers a full-read path.
pub fn fit_align(read: &[u8], window: &[u8], diag_offset: usize, sc: &Scoring) -> Option<Alignment> {
    if gpf_trace::enabled() && !read.is_empty() && !window.is_empty() {
        // Band area actually evaluated: Σ_i (hi(i) - lo(i)).
        let (m, n, band) = (read.len(), window.len(), sc.band);
        let cells: u64 = (0..=m)
            .map(|i| {
                let lo = (i + diag_offset).saturating_sub(band);
                let hi = (i + diag_offset + band + 1).min(n + 1);
                hi.saturating_sub(lo) as u64
            })
            .sum();
        gpf_trace::counter(gpf_trace::names::ALIGN_SW_CELLS).add(cells);
    }
    if swar::in_envelope(read.len(), window.len(), sc) {
        swar::fit_align_swar(read, window, diag_offset, sc)
    } else {
        reference::fit_align_ref(read, window, diag_offset, sc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpf_formats::cigar::CigarOp;

    fn ranks(s: &[u8]) -> Vec<u8> {
        s.iter().map(|&b| gpf_formats::base::rank4(b)).collect()
    }

    fn align(read: &[u8], window: &[u8], diag: usize) -> Alignment {
        fit_align(&ranks(read), &ranks(window), diag, &Scoring::default()).expect("aligns")
    }

    #[test]
    fn default_scoring_takes_the_swar_path() {
        // The seed unit tests below all run under the default scoring; this
        // pins that they exercise the SWAR kernel, not the fallback.
        assert!(swar::in_envelope(150, 300, &Scoring::default()));
    }

    #[test]
    fn perfect_match() {
        let a = align(b"ACGTACGT", b"TTACGTACGTTT", 2);
        assert_eq!(a.cigar.to_string(), "8M");
        assert_eq!(a.window_start, 2);
        assert_eq!(a.edit_distance, 0);
        assert_eq!(a.score, 16);
    }

    #[test]
    fn single_mismatch() {
        let a = align(b"ACGTACGT", b"TTACGAACGTTT", 2);
        assert_eq!(a.cigar.to_string(), "8M");
        assert_eq!(a.edit_distance, 1);
        assert_eq!(a.score, 7 * 2 - 3);
    }

    #[test]
    fn deletion_from_reference() {
        let read = b"ACGTACGT";
        let window = b"GGACGTGGACGTCC"; // window has GG inserted vs read
        let a = align(read, window, 2);
        assert_eq!(a.cigar.to_string(), "4M2D4M");
        assert_eq!(a.edit_distance, 2);
        assert_eq!(a.score, 8 * 2 - 5 - 2 * 2);
    }

    #[test]
    fn insertion_to_reference() {
        let read = b"ACGTTTACGT";
        let window = b"GGACGTACGTCC";
        let a = align(read, window, 2);
        assert_eq!(a.edit_distance, 2);
        assert_eq!(a.cigar.read_len(), 10);
        assert_eq!(a.cigar.ref_span(), 8);
        let inserted: u32 = a
            .cigar
            .0
            .iter()
            .filter(|(_, op)| *op == CigarOp::Ins)
            .map(|&(count, _)| count)
            .sum();
        assert_eq!(inserted, 2);
        assert_eq!(a.score, 8 * 2 - 5 - 2 * 2);
    }

    #[test]
    fn affine_gaps_stay_contiguous() {
        // A 5-base deletion must come out as one 5D op, not split gaps.
        let read: Vec<u8> = [&b"ACGTACGTCCGGAAT"[..], &b"TGCATGCAGGCCTTA"[..]].concat();
        let window: Vec<u8> =
            [&b"ACGTACGTCCGGAAT"[..], &b"GGGTC"[..], &b"TGCATGCAGGCCTTA"[..]].concat();
        let a = align(&read, &window, 0);
        assert_eq!(a.cigar.to_string(), "15M5D15M");
        assert_eq!(a.edit_distance, 5);
    }

    #[test]
    fn window_start_is_free() {
        let a = align(b"CCCC", b"AAAAAACCCC", 0);
        assert_eq!(a.window_start, 6);
        assert_eq!(a.cigar.to_string(), "4M");
    }

    #[test]
    fn cigar_consumes_whole_read() {
        let reads: [&[u8]; 3] = [b"ACGT", b"ACGTACGTAC", b"TTTTTTT"];
        for read in reads {
            let window: Vec<u8> = [b"GG".as_slice(), read, b"GG".as_slice()].concat();
            let a = align(read, &window, 2);
            assert_eq!(a.cigar.read_len(), read.len() as u64);
        }
    }

    #[test]
    fn too_small_window_returns_none() {
        let r = ranks(b"ACGTACGTACGTACGTACGTACGTACGTACGT");
        let w = ranks(b"ACG");
        assert!(fit_align(&r, &w, 0, &Scoring::default()).is_none());
    }

    #[test]
    fn empty_inputs_return_none() {
        assert!(fit_align(&[], &[0, 1], 0, &Scoring::default()).is_none());
        assert!(fit_align(&[0], &[], 0, &Scoring::default()).is_none());
    }

    #[test]
    fn prefers_mismatch_over_two_gaps() {
        let a = align(b"ACGTACGT", b"ACGAACGT", 0);
        assert_eq!(a.cigar.to_string(), "8M");
        assert_eq!(a.edit_distance, 1);
    }

    #[test]
    fn mismatch_cheaper_than_open_close() {
        // With affine costs a single substitution (−3) must beat an
        // insertion+deletion pair (2 opens = −14).
        let a = align(b"AAAATAAAA", b"CCAAAACAAAACC", 2);
        assert_eq!(a.cigar.to_string(), "9M");
    }
}
