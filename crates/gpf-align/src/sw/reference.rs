//! The scalar seed kernel, retained verbatim as the executable reference.
//!
//! [`fit_align_ref`] is the cell-at-a-time banded affine DP the workspace
//! shipped with before the SWAR overhaul. It stays in-tree for three jobs:
//! the differential proptests pin the fast kernel to it (identical score,
//! CIGAR, and `window_start` over random inputs), the `--kernel-bench` gate
//! measures the fast kernel's cell throughput against it, and
//! [`super::fit_align`] falls back to it whenever a scoring or input shape
//! falls outside the 16-bit SWAR envelope — so the public contract is
//! exactly this function's behavior on every input.

use super::{Alignment, Scoring, NEG, S_M, S_X, S_Y};
use gpf_formats::cigar::{Cigar, CigarOp};

/// Align `read` (0..=3 ranks) against `window` (0..=3 ranks) with free
/// reference end gaps, banded around the diagonal `j ≈ i + diag_offset`.
///
/// Returns `None` when the band never covers a full-read path.
pub fn fit_align_ref(
    read: &[u8],
    window: &[u8],
    diag_offset: usize,
    sc: &Scoring,
) -> Option<Alignment> {
    let m = read.len();
    let n = window.len();
    if m == 0 || n == 0 || n + sc.band < m {
        return None;
    }
    let band = sc.band;
    // j counts consumed window characters: 0..=n.
    let lo = |i: usize| (i + diag_offset).saturating_sub(band);
    let hi = |i: usize| (i + diag_offset + band + 1).min(n + 1);
    let width = 2 * band + 1;
    let cells = (m + 1) * width;
    // dp[state][cell], bt[state][cell] = predecessor state + op marker.
    let mut dp = [vec![NEG; cells], vec![NEG; cells], vec![NEG; cells]];
    // bt codes: 0 = invalid/start, 1..=3 = came from state (code-1).
    let mut bt = [vec![0u8; cells], vec![0u8; cells], vec![0u8; cells]];
    let at = |i: usize, j: usize| i * width + (j - lo(i));

    // Row 0: free leading reference gap — start in M with score 0 anywhere.
    for j in lo(0)..hi(0) {
        dp[S_M][at(0, j)] = 0;
    }
    for i in 1..=m {
        for j in lo(i)..hi(i) {
            let cell = at(i, j);
            // M: consume read[i-1] and window[j-1].
            if j >= 1 && j - 1 >= lo(i - 1) && j - 1 < hi(i - 1) {
                let prev = at(i - 1, j - 1);
                let sub = if read[i - 1] == window[j - 1] { sc.match_score } else { sc.mismatch };
                let (mut best, mut from) = (NEG, 0u8);
                for s in [S_M, S_X, S_Y] {
                    if dp[s][prev] > best {
                        best = dp[s][prev];
                        from = s as u8 + 1;
                    }
                }
                if best > NEG {
                    dp[S_M][cell] = best + sub;
                    bt[S_M][cell] = from;
                }
            }
            // X: consume read[i-1] only (insertion to reference).
            if j >= lo(i - 1) && j < hi(i - 1) {
                let prev = at(i - 1, j);
                let open = dp[S_M][prev].saturating_add(sc.gap_open + sc.gap_extend);
                let extend = dp[S_X][prev].saturating_add(sc.gap_extend);
                if open >= extend && open > NEG {
                    dp[S_X][cell] = open;
                    bt[S_X][cell] = S_M as u8 + 1;
                } else if extend > NEG {
                    dp[S_X][cell] = extend;
                    bt[S_X][cell] = S_X as u8 + 1;
                }
            }
            // Y: consume window[j-1] only (deletion from reference).
            if j >= 1 && j - 1 >= lo(i) {
                let prev = at(i, j - 1);
                let open = dp[S_M][prev].saturating_add(sc.gap_open + sc.gap_extend);
                let extend = dp[S_Y][prev].saturating_add(sc.gap_extend);
                if open >= extend && open > NEG {
                    dp[S_Y][cell] = open;
                    bt[S_Y][cell] = S_M as u8 + 1;
                } else if extend > NEG {
                    dp[S_Y][cell] = extend;
                    bt[S_Y][cell] = S_Y as u8 + 1;
                }
            }
        }
    }

    // Best end cell on the last row: M or X states (ending in Y would mean a
    // trailing reference deletion, which the free end gap makes pointless).
    let (mut best, mut j_end, mut s_end) = (NEG, 0usize, S_M);
    for j in lo(m)..hi(m) {
        for s in [S_M, S_X] {
            if dp[s][at(m, j)] > best {
                best = dp[s][at(m, j)];
                j_end = j;
                s_end = s;
            }
        }
    }
    if best <= NEG {
        return None;
    }

    // Traceback.
    let mut ops_rev: Vec<CigarOp> = Vec::with_capacity(m + 8);
    let mut edit = 0u32;
    let (mut i, mut j, mut s) = (m, j_end, s_end);
    while i > 0 {
        let from = bt[s][at(i, j)];
        if from == 0 {
            return None; // band broke the path
        }
        let prev_state = (from - 1) as usize;
        match s {
            S_M => {
                if read[i - 1] != window[j - 1] {
                    edit += 1;
                }
                ops_rev.push(CigarOp::Match);
                i -= 1;
                j -= 1;
            }
            S_X => {
                ops_rev.push(CigarOp::Ins);
                edit += 1;
                i -= 1;
            }
            _ => {
                ops_rev.push(CigarOp::Del);
                edit += 1;
                j -= 1;
            }
        }
        s = prev_state;
    }
    let window_start = j;

    // Run-length encode.
    let mut runs: Vec<(u32, CigarOp)> = Vec::new();
    for op in ops_rev.into_iter().rev() {
        match runs.last_mut() {
            Some((count, last)) if *last == op => *count += 1,
            _ => runs.push((1, op)),
        }
    }
    Some(Alignment { score: best, window_start, cigar: Cigar::from_ops(runs), edit_distance: edit })
}
