//! BWT + FM-index over the concatenated reference genome.
//!
//! Alphabet: `$ < A < C < G < T` (any `N` in the reference collapses to `A`,
//! as bwa does). Backward search runs over sampled occurrence counts; locate
//! is O(1) because the full suffix array is retained (4 bytes/base — cheap
//! at this reproduction's genome scale, and it keeps `locate` exact).

use crate::suffix::suffix_array;
use gpf_formats::base::rank4;
use gpf_formats::{GenomeInterval, ReferenceGenome};

/// Occurrence-count checkpoint spacing.
const OCC_SAMPLE: usize = 64;

/// FM-index over a genome.
pub struct FmIndex {
    /// Text in 0..=3 ranks (sentinel handled implicitly, conceptually at the
    /// end of the text).
    text: Vec<u8>,
    /// Full suffix array (includes the sentinel suffix at index 0
    /// conceptually removed — entries address `text`).
    sa: Vec<u32>,
    /// BWT characters, 0..=3, with `sentinel_pos` marking where `$` sits.
    bwt: Vec<u8>,
    /// Row of the BWT holding the sentinel.
    sentinel_pos: usize,
    /// C[c]: number of text characters strictly smaller than `c` (sentinel
    /// included).
    c: [usize; 5],
    /// Sampled cumulative occ counts: `occ_samples[block][c]` = occurrences
    /// of `c` in `bwt[0 .. block*OCC_SAMPLE)`.
    occ_samples: Vec<[u32; 4]>,
    /// Contig start offsets in the concatenated text.
    contig_offsets: Vec<u64>,
    /// Contig lengths.
    contig_lengths: Vec<u64>,
}

impl FmIndex {
    /// Build the index over the full reference genome.
    pub fn build(reference: &ReferenceGenome) -> Self {
        let (cat, offsets) = reference.concatenated();
        let lengths = reference.dict().lengths();
        Self::build_from_text(&cat, offsets, lengths)
    }

    /// Build from a raw text (exposed for tests).
    pub fn build_from_text(raw: &[u8], contig_offsets: Vec<u64>, contig_lengths: Vec<u64>) -> Self {
        let text: Vec<u8> = raw.iter().map(|&b| rank4(b)).collect();
        let n = text.len();
        assert!(n > 0, "cannot index an empty genome");
        let sa = suffix_array(&text);

        // BWT with conceptual sentinel: row 0 of the full BWT matrix is the
        // sentinel suffix, whose BWT char is text[n-1]; for sa[i]=0 the BWT
        // char is the sentinel. We store rows for suffixes 0..n and remember
        // where the sentinel char lives.
        let mut bwt = Vec::with_capacity(n + 1);
        bwt.push(text[n - 1]); // row for the sentinel suffix "$"
        let mut sentinel_pos = 0usize;
        for (row, &s) in sa.iter().enumerate() {
            if s == 0 {
                sentinel_pos = row + 1;
                bwt.push(0); // placeholder; excluded from occ counts
            } else {
                bwt.push(text[s as usize - 1]);
            }
        }

        // C array: sentinel counts as the single smallest character.
        let mut counts = [0usize; 4];
        for &ch in &text {
            counts[ch as usize] += 1;
        }
        let mut c = [0usize; 5];
        c[0] = 1; // one sentinel before 'A'
        for i in 0..4 {
            c[i + 1] = c[i] + counts[i];
        }
        // c[k] = #chars < rank k where rank space is A=0..T=3 shifted by
        // sentinel: lookup uses c[rank] as "first row of rank" = c[rank].

        // Occ checkpoints.
        let blocks = bwt.len() / OCC_SAMPLE + 1;
        let mut occ_samples = Vec::with_capacity(blocks);
        let mut acc = [0u32; 4];
        for (i, &ch) in bwt.iter().enumerate() {
            if i % OCC_SAMPLE == 0 {
                occ_samples.push(acc);
            }
            if i != sentinel_pos {
                acc[ch as usize] += 1;
            }
        }
        occ_samples.push(acc);

        Self { text, sa, bwt, sentinel_pos, c, occ_samples, contig_offsets, contig_lengths }
    }

    /// Genome length (bases).
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// `true` when the indexed text is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// occurrences of `ch` in `bwt[0..i)`.
    fn occ(&self, ch: u8, i: usize) -> usize {
        let block = i / OCC_SAMPLE;
        let mut count = self.occ_samples[block][ch as usize] as usize;
        for (j, &b) in self.bwt[block * OCC_SAMPLE..i].iter().enumerate() {
            let pos = block * OCC_SAMPLE + j;
            if b == ch && pos != self.sentinel_pos {
                count += 1;
            }
        }
        count
    }

    /// First BWT row whose suffix starts with `ch`.
    fn c_of(&self, ch: u8) -> usize {
        self.c[ch as usize]
    }

    /// Backward-search `pattern` (ASCII ACGT; other characters abort with
    /// `None`). Returns the SA interval `[lo, hi)` in BWT row space.
    pub fn backward_search(&self, pattern: &[u8]) -> Option<(usize, usize)> {
        if pattern.is_empty() {
            return None;
        }
        let mut lo = 0usize;
        let mut hi = self.bwt.len();
        for &b in pattern.iter().rev() {
            if !matches!(b, b'A' | b'C' | b'G' | b'T') {
                return None;
            }
            let ch = rank4(b);
            lo = self.c_of(ch) + self.occ(ch, lo);
            hi = self.c_of(ch) + self.occ(ch, hi);
            if lo >= hi {
                return None;
            }
        }
        Some((lo, hi))
    }

    /// Number of occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.backward_search(pattern).map(|(lo, hi)| hi - lo).unwrap_or(0)
    }

    /// Text positions of the SA interval (row space from
    /// [`FmIndex::backward_search`]), capped at `max` results.
    pub fn locate(&self, lo: usize, hi: usize, max: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity((hi - lo).min(max));
        for row in lo..hi.min(lo.saturating_add(max)) {
            // Row 0 is the sentinel suffix; data rows are offset by one.
            if row == 0 {
                continue;
            }
            out.push(self.sa[row - 1]);
        }
        out
    }

    /// Find up to `max` text positions where `pattern` occurs.
    pub fn find(&self, pattern: &[u8], max: usize) -> Vec<u32> {
        match self.backward_search(pattern) {
            Some((lo, hi)) => self.locate(lo, hi, max),
            None => Vec::new(),
        }
    }

    /// Convert a concatenated-text position into `(contig, offset)`;
    /// `None` when a match of `len` bases would span a contig boundary.
    pub fn resolve(&self, text_pos: u32, len: usize) -> Option<(u32, u64)> {
        let pos = text_pos as u64;
        let idx = self.contig_offsets.partition_point(|&o| o <= pos) - 1;
        let off = pos - self.contig_offsets[idx];
        if off + len as u64 > self.contig_lengths[idx] {
            return None;
        }
        Some((idx as u32, off))
    }

    /// The reference window `[start, end)` on a contig as raw 0..=3 ranks
    /// (for the extender).
    pub fn contig_window(&self, interval: GenomeInterval) -> &[u8] {
        let base = self.contig_offsets[interval.contig as usize];
        &self.text[(base + interval.start) as usize..(base + interval.end) as usize]
    }

    /// Contig length.
    pub fn contig_len(&self, contig: u32) -> u64 {
        self.contig_lengths[contig as usize]
    }

    /// Number of contigs.
    pub fn num_contigs(&self) -> usize {
        self.contig_lengths.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(text: &[u8]) -> FmIndex {
        FmIndex::build_from_text(text, vec![0], vec![text.len() as u64])
    }

    /// Naive occurrence finder for cross-checking.
    fn naive_find(text: &[u8], pattern: &[u8]) -> Vec<u32> {
        (0..=text.len().saturating_sub(pattern.len()))
            .filter(|&i| &text[i..i + pattern.len()] == pattern)
            .map(|i| i as u32)
            .collect()
    }

    #[test]
    fn count_and_find_simple() {
        let text = b"ACGTACGTACGT";
        let idx = index(text);
        assert_eq!(idx.count(b"ACGT"), 3);
        assert_eq!(idx.count(b"CGTA"), 2);
        assert_eq!(idx.count(b"TTT"), 0);
        let mut hits = idx.find(b"ACGT", 10);
        hits.sort();
        assert_eq!(hits, vec![0, 4, 8]);
    }

    #[test]
    fn matches_naive_on_many_patterns() {
        let mut state = 0xdead_beefu64;
        let text: Vec<u8> = (0..800)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect();
        let idx = index(&text);
        for start in (0..700).step_by(37) {
            for len in [4usize, 8, 15, 31] {
                let pattern = &text[start..start + len];
                let mut got = idx.find(pattern, usize::MAX);
                got.sort();
                assert_eq!(got, naive_find(&text, pattern), "pattern at {start} len {len}");
            }
        }
    }

    #[test]
    fn whole_text_is_found_once() {
        let text = b"GATTACAGATT";
        let idx = index(text);
        assert_eq!(idx.find(text, 10), vec![0]);
    }

    #[test]
    fn absent_and_invalid_patterns() {
        let idx = index(b"ACGTACGT");
        assert_eq!(idx.count(b"AAAAAAAA"), 0);
        assert_eq!(idx.count(b"ACNT"), 0, "N aborts the search");
        assert_eq!(idx.count(b""), 0);
    }

    #[test]
    fn single_character_counts() {
        let text = b"AACCGGTTAA";
        let idx = index(text);
        assert_eq!(idx.count(b"A"), 4);
        assert_eq!(idx.count(b"C"), 2);
        assert_eq!(idx.count(b"G"), 2);
        assert_eq!(idx.count(b"T"), 2);
    }

    #[test]
    fn resolve_maps_contigs_and_rejects_spanning() {
        let text = b"AAAACCCC"; // two contigs of 4
        let idx = FmIndex::build_from_text(text, vec![0, 4], vec![4, 4]);
        assert_eq!(idx.resolve(0, 4), Some((0, 0)));
        assert_eq!(idx.resolve(4, 4), Some((1, 0)));
        assert_eq!(idx.resolve(5, 3), Some((1, 1)));
        assert_eq!(idx.resolve(2, 4), None, "spans the boundary");
        assert_eq!(idx.num_contigs(), 2);
        assert_eq!(idx.contig_len(1), 4);
    }

    #[test]
    fn contig_window_returns_ranks() {
        let text = b"ACGTAAAA";
        let idx = FmIndex::build_from_text(text, vec![0], vec![8]);
        let w = idx.contig_window(GenomeInterval::new(0, 0, 4));
        assert_eq!(w, &[0, 1, 2, 3]);
    }

    #[test]
    fn repeated_text_counts_all_occurrences() {
        let text: Vec<u8> = b"ACGT".repeat(50);
        let idx = index(&text);
        assert_eq!(idx.count(b"ACGTACGT"), 49);
        assert_eq!(idx.find(b"ACGTACGT", 5).len(), 5, "locate respects max");
    }
}
