//! # gpf-align
//!
//! Read-alignment substrates for the GPF reproduction.
//!
//! The paper's Aligner stage wraps **bwa-0.7.12** (BWA-MEM): a
//! Burrows–Wheeler-transform index over the reference plus seed-and-extend
//! alignment. This crate implements that algorithmic family from scratch:
//!
//! * [`suffix`] — suffix-array construction (prefix doubling);
//! * [`fmindex`] — BWT + FM-index with backward search and O(1) locate;
//! * [`sw`] — banded fitting alignment (Smith–Waterman style) with CIGAR
//!   traceback, computed anti-diagonal-wise with packed 16-bit SWAR lanes
//!   (the scalar seed kernel survives as [`sw::reference::fit_align_ref`]);
//! * [`myers`] — bit-parallel Myers edit distance, used as a sound
//!   prefilter that lets candidate windows skip the affine DP entirely;
//! * [`bwamem`] — the BWA-MEM-like aligner: exact-match seeding through the
//!   FM-index, diagonal voting, banded extension, paired-end pairing with
//!   mate rescue, MAPQ from score margins;
//! * [`snap`] — a SNAP-like hash-table aligner (the Persona baseline of
//!   §5.2.3 integrates SNAP; Figure 11(d) compares against it).
//!
//! Like the paper's pipeline, the aligner is deliberately CPU-bound: seeding
//! and banded extension dominate, which is what makes the Aligner phase the
//! CPU-saturated segment of Figure 13.

pub mod bwamem;
pub mod fmindex;
pub mod myers;
pub mod snap;
pub mod suffix;
pub mod sw;

pub use bwamem::{AlignerOptions, BwaMemAligner};
pub use fmindex::FmIndex;
pub use snap::SnapAligner;
