//! Myers bit-parallel edit distance — the candidate-window prefilter.
//!
//! [`fitting_distance`] computes the *fitting* (semi-global) unit-cost edit
//! distance of a read against a reference window — the read is consumed in
//! full, the window start and end are free — processing 64 read positions
//! per u64 word (Myers 1999, in Hyyrö's block formulation). One column of
//! the bit-parallel recurrence replaces 64 cells of the classic DP.
//!
//! Its job here is not alignment but *pruning*: [`prefilter_allows`] turns
//! the measured distance into a sound upper bound on the score any affine
//! banded alignment ([`crate::sw::fit_align`]) could reach, so candidate
//! loops can skip the expensive DP outright when even the bound falls below
//! their acceptance threshold. Soundness argument (DESIGN.md §15): the
//! fitting unit-cost distance `d` is a lower bound on the number of edits
//! (substitutions + inserted read bases + deleted window bases) of *every*
//! read-consuming path, banded or not; each edit costs at least
//! [`min_edit_cost`] score relative to a perfect column, so no path scores
//! above `m·match − d·min_edit_cost`.

/// Edit-distance state for one read/window pair, reusable across windows.
///
/// Holds the per-symbol pattern masks (`peq`) and the per-block vertical
/// delta vectors. Rebuilt cheaply per read via [`MyersPattern::build`];
/// scanning a window is allocation-free.
pub struct MyersPattern {
    /// Read length.
    m: usize,
    /// Number of 64-bit blocks covering the read.
    blocks: usize,
    /// Dense symbol remap: byte -> index into `peq`, 255 = unseen.
    sym_index: [u8; 256],
    /// Per-symbol match masks over read positions, `blocks` words each,
    /// laid out symbol-major.
    peq: Vec<u64>,
    /// Number of distinct read symbols indexed in `peq`.
    nsyms: usize,
    /// Scratch: vertical positive deltas per block.
    pv: Vec<u64>,
    /// Scratch: vertical negative deltas per block.
    mv: Vec<u64>,
}

impl MyersPattern {
    /// Index the read's symbols into bit masks. Any byte values are
    /// accepted — equality is plain byte equality, exactly as
    /// [`crate::sw::fit_align`] compares rank arrays.
    pub fn build(read: &[u8]) -> Self {
        let m = read.len();
        let blocks = m.div_ceil(64).max(1);
        let mut sym_index = [255u8; 256];
        let mut peq: Vec<u64> = Vec::new();
        let mut nsyms = 0usize;
        for (i, &b) in read.iter().enumerate() {
            if sym_index[b as usize] == 255 {
                sym_index[b as usize] = nsyms as u8;
                peq.extend(std::iter::repeat_n(0u64, blocks));
                nsyms += 1;
            }
            let s = sym_index[b as usize] as usize;
            peq[s * blocks + (i / 64)] |= 1u64 << (i % 64);
        }
        Self { m, blocks, sym_index, peq, nsyms, pv: vec![0; blocks], mv: vec![0; blocks] }
    }

    /// Fitting edit distance of the read against `window`, abandoning early
    /// with `None` once the distance provably exceeds `k`.
    ///
    /// `None` is also returned for an empty read (no meaningful distance).
    /// An empty window costs `m` (the whole read inserted).
    pub fn distance_within(&mut self, window: &[u8], k: u32) -> Option<u32> {
        if self.m == 0 {
            return None;
        }
        let blocks = self.blocks;
        let last_bit = 1u64 << ((self.m - 1) % 64);
        // Column 0: D[i][0] = i (leading window gap is not free — the read
        // must consume window characters or pay insertions).
        for b in 0..blocks {
            self.pv[b] = !0u64;
            self.mv[b] = 0;
        }
        // Score at the bottom row of the last block.
        let mut score = self.m as u32;
        let mut best = score;
        for (col, &c) in window.iter().enumerate() {
            let si = self.sym_index[c as usize];
            let zero_eq = si == 255 || si as usize >= self.nsyms;
            let base = if zero_eq { 0 } else { si as usize * blocks };
            // hin: horizontal delta entering block 0's top row. The fitting
            // DP's top row is all zeros (free window start), so it is 0.
            let mut hin: i32 = 0;
            for b in 0..blocks {
                let eq0 = if zero_eq { 0 } else { self.peq[base + b] };
                let pv = self.pv[b];
                let mv = self.mv[b];
                // Hyyrö's block step with carry-in `hin`.
                let mut eq = eq0;
                if hin < 0 {
                    eq |= 1;
                }
                let xv = eq | mv;
                let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
                let mut ph = mv | !(xh | pv);
                let mut mh = pv & xh;
                let top = if b == blocks - 1 { last_bit } else { 1u64 << 63 };
                let mut hout: i32 = 0;
                if ph & top != 0 {
                    hout = 1;
                } else if mh & top != 0 {
                    hout = -1;
                }
                ph <<= 1;
                mh <<= 1;
                if hin > 0 {
                    ph |= 1;
                } else if hin < 0 {
                    mh |= 1;
                }
                self.pv[b] = mh | !(xv | ph);
                self.mv[b] = ph & xv;
                hin = hout;
            }
            score = score.wrapping_add_signed(hin);
            best = best.min(score);
            // Early abandon: the bottom-row score drops by at most 1 per
            // column, so the best any remaining column can reach is
            // `score - remaining` — once that still exceeds `k` (and no
            // earlier column got there) the window is proven out of budget.
            let remaining = (window.len() - col - 1) as u32;
            if best > k && score > k.saturating_add(remaining) {
                return None;
            }
        }
        if best <= k { Some(best) } else { None }
    }
}

/// One-shot fitting distance with a cutoff; see
/// [`MyersPattern::distance_within`].
pub fn fitting_distance(read: &[u8], window: &[u8], k: u32) -> Option<u32> {
    MyersPattern::build(read).distance_within(window, k)
}

/// Minimum score cost of one unit edit under `sc`, relative to a perfectly
/// matching column: a substitution forgoes a match and takes the mismatch,
/// an inserted read base forgoes a match and pays a gap base, a deleted
/// window base pays a gap base. Gap-open costs only add to these, so the
/// minimum over the three is a sound per-edit floor. Returns `None` when
/// the scoring makes edits free (or profitable) — no pruning is possible.
pub fn min_edit_cost(sc: &crate::sw::Scoring) -> Option<i64> {
    let sub = sc.match_score as i64 - sc.mismatch as i64;
    let ins = sc.match_score as i64 - sc.gap_extend as i64;
    let del = -(sc.gap_extend as i64);
    let c = sub.min(ins).min(del);
    (c > 0).then_some(c)
}

/// Largest fitting distance that could still reach `min_score` under `sc`
/// for a read of length `m`: any path with `d` edits scores at most
/// `m·match − d·min_edit_cost`. Returns `None` when no finite cutoff
/// exists (degenerate scoring) — callers must then run the DP unfiltered.
pub fn max_edits_for_score(m: usize, min_score: i64, sc: &crate::sw::Scoring) -> Option<u32> {
    let cost = min_edit_cost(sc)?;
    let perfect = m as i64 * sc.match_score as i64;
    if perfect < min_score {
        // Even the perfect alignment misses the threshold; 0 keeps the
        // filter sound (distance 0 still "passes" and the DP decides).
        return Some(0);
    }
    Some(((perfect - min_score) / cost).min(u32::MAX as i64) as u32)
}

/// Sound DP-skip test for score-thresholded candidate loops: `true` when
/// an alignment of `read` against `window` might still reach `min_score`
/// under `sc` (run the DP), `false` when no path possibly can (skip it).
///
/// Skipping is *output-preserving*: every skipped window is one the caller
/// would have rejected after running [`crate::sw::fit_align`], because the
/// best achievable score `m·match − d·min_edit_cost` already falls short of
/// `min_score`. Callers that accept on `score >= threshold` must pass
/// `threshold.ceil()` when the threshold is fractional.
///
/// Counts each decision on the `align.prefilter.{hit,skip}` counter pair
/// when tracing is enabled.
pub fn prefilter_allows(
    read: &[u8],
    window: &[u8],
    min_score: i64,
    sc: &crate::sw::Scoring,
) -> bool {
    let pass = match max_edits_for_score(read.len(), min_score, sc) {
        // Degenerate scoring: edits can be free, no finite cutoff — the
        // DP must decide.
        None => true,
        // Empty read: fitting distance is undefined; let the DP return
        // its own None.
        Some(_) if read.is_empty() => true,
        Some(k) => fitting_distance(read, window, k).is_some(),
    };
    if gpf_trace::enabled() {
        let name = if pass {
            gpf_trace::names::ALIGN_PREFILTER_HIT
        } else {
            gpf_trace::names::ALIGN_PREFILTER_SKIP
        };
        gpf_trace::counter(name).add(1);
    }
    pass
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic O(mn) fitting edit distance: read global, window local.
    fn dp_fitting(read: &[u8], window: &[u8]) -> u32 {
        let m = read.len();
        let n = window.len();
        let mut prev: Vec<u32> = (0..=m as u32).collect();
        let mut cur = vec![0u32; m + 1];
        let mut best = prev[m];
        for j in 1..=n {
            cur[0] = 0;
            for i in 1..=m {
                let sub = prev[i - 1] + u32::from(read[i - 1] != window[j - 1]);
                cur[i] = sub.min(prev[i] + 1).min(cur[i - 1] + 1);
            }
            best = best.min(cur[m]);
            std::mem::swap(&mut prev, &mut cur);
        }
        best
    }

    #[test]
    fn exact_match_is_zero() {
        assert_eq!(fitting_distance(b"ACGT", b"TTACGTTT", 10), Some(0));
    }

    #[test]
    fn substitution_counts_one() {
        assert_eq!(fitting_distance(b"ACGT", b"TTACCTTT", 10), Some(1));
    }

    #[test]
    fn empty_window_costs_read_length() {
        assert_eq!(fitting_distance(b"ACGT", b"", 10), Some(4));
        assert_eq!(fitting_distance(b"ACGT", b"", 3), None);
    }

    #[test]
    fn empty_read_is_none() {
        assert_eq!(fitting_distance(b"", b"ACGT", 10), None);
    }

    #[test]
    fn cutoff_rejects() {
        assert_eq!(fitting_distance(b"AAAA", b"TTTT", 3), None);
        assert_eq!(fitting_distance(b"AAAA", b"TTTT", 4), Some(4));
    }

    #[test]
    fn matches_dp_across_word_boundary() {
        // Reads of 63/64/65/130 bases exercise the block carry logic.
        let mut state = 0x2390u64;
        let mut gen = |n: usize| -> Vec<u8> {
            (0..n)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
                    (state >> 33) as u8 % 4
                })
                .collect()
        };
        for m in [1usize, 7, 63, 64, 65, 100, 128, 130] {
            let read = gen(m);
            let window = gen(m + 40);
            let expect = dp_fitting(&read, &window);
            assert_eq!(
                fitting_distance(&read, &window, u32::MAX),
                Some(expect),
                "m={m}"
            );
        }
    }

    #[test]
    fn min_edit_cost_default_scoring() {
        let sc = crate::sw::Scoring::default();
        // sub: 2-(-3)=5, ins: 2-(-2)=4, del: 2.
        assert_eq!(min_edit_cost(&sc), Some(2));
        // Degenerate: free gaps -> no pruning possible.
        let free = crate::sw::Scoring { gap_extend: 0, ..sc };
        assert_eq!(min_edit_cost(&free), None);
    }

    #[test]
    fn prefilter_never_skips_an_acceptable_window() {
        // Differential soundness: whenever the DP would accept at
        // `min_score`, the prefilter must say "run it".
        let sc = crate::sw::Scoring::default();
        let mut state = 0x51u64;
        let mut gen = |n: usize| -> Vec<u8> {
            (0..n)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
                    (state >> 33) as u8 % 4
                })
                .collect()
        };
        for round in 0..100 {
            let read = gen(20 + round % 30);
            let window = gen(40 + round % 50);
            let perfect = read.len() as i64 * sc.match_score as i64;
            let min_score = (perfect * 2) / 5; // the 0.4 fraction callers use
            let allowed = prefilter_allows(&read, &window, min_score, &sc);
            if let Some(aln) = crate::sw::fit_align(&read, &window, 10, &sc) {
                if aln.score as i64 >= min_score {
                    assert!(allowed, "round {round}: skipped an acceptable window");
                }
            }
        }
    }

    #[test]
    fn max_edits_matches_bound_arithmetic() {
        let sc = crate::sw::Scoring::default();
        // m=100: perfect 200. Threshold 80 -> (200-80)/2 = 60 edits.
        assert_eq!(max_edits_for_score(100, 80, &sc), Some(60));
        // Threshold above perfect -> 0 (filter stays sound, DP decides).
        assert_eq!(max_edits_for_score(10, 1000, &sc), Some(0));
    }
}
