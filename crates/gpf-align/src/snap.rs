//! SNAP-like hash-table aligner — the baseline integrated by Persona (§5.2.3).
//!
//! SNAP trades memory for speed: instead of an FM-index it builds a dense
//! hash table from fixed-length k-mers ("seeds") to genome locations, looks
//! up a handful of seeds per read, and verifies candidate locations
//! directly. Persona uses it single-end; the paper's Figure 11(d) compares
//! its throughput against GPF's paired-end BWA.

use crate::sw::{fit_align, Scoring};
use gpf_formats::base::{rank4, reverse_complement};
use gpf_formats::sam::{SamFlags, SamRecord};
use gpf_formats::ReferenceGenome;
use std::collections::HashMap;

/// SNAP-style aligner options.
#[derive(Debug, Clone)]
pub struct SnapOptions {
    /// Seed (k-mer) length; SNAP's default is 20.
    pub seed_len: usize,
    /// Stride between indexed genome positions.
    pub index_stride: usize,
    /// Seeds looked up per read.
    pub seeds_per_read: usize,
    /// Hash buckets larger than this are skipped (repeat filter).
    pub max_bucket: usize,
    /// Candidate locations verified per read.
    pub max_candidates: usize,
    /// Extension scoring.
    pub scoring: Scoring,
    /// Minimum fraction of the perfect score to accept.
    pub min_score_frac: f64,
}

impl Default for SnapOptions {
    fn default() -> Self {
        Self {
            seed_len: 20,
            index_stride: 1,
            seeds_per_read: 8,
            max_bucket: 32,
            max_candidates: 6,
            scoring: Scoring::default(),
            min_score_frac: 0.4,
        }
    }
}

/// The hash-based aligner.
pub struct SnapAligner {
    table: HashMap<u64, Vec<u32>>,
    text: Vec<u8>,
    contig_offsets: Vec<u64>,
    contig_lengths: Vec<u64>,
    opts: SnapOptions,
}

/// Pack a k-mer (ACGT only) into a u64; `None` if it contains other bases.
fn pack_kmer(kmer: &[u8]) -> Option<u64> {
    debug_assert!(kmer.len() <= 31);
    let mut v = 1u64; // leading 1 guards length
    for &b in kmer {
        if !matches!(b, b'A' | b'C' | b'G' | b'T') {
            return None;
        }
        v = (v << 2) | rank4(b) as u64;
    }
    Some(v)
}

impl SnapAligner {
    /// Build the seed table over the reference.
    pub fn new(reference: &ReferenceGenome) -> Self {
        Self::with_options(reference, SnapOptions::default())
    }

    /// Build with explicit options.
    pub fn with_options(reference: &ReferenceGenome, opts: SnapOptions) -> Self {
        let (text, contig_offsets) = reference.concatenated();
        let contig_lengths = reference.dict().lengths();
        let mut table: HashMap<u64, Vec<u32>> = HashMap::new();
        let k = opts.seed_len;
        let mut pos = 0usize;
        while pos + k <= text.len() {
            if let Some(key) = pack_kmer(&text[pos..pos + k]) {
                let bucket = table.entry(key).or_default();
                if bucket.len() <= opts.max_bucket {
                    bucket.push(pos as u32);
                }
            }
            pos += opts.index_stride;
        }
        Self { table, text, contig_offsets, contig_lengths, opts }
    }

    /// Approximate index memory footprint in bytes (SNAP's hash index is
    /// several times larger than an FM-index — visible in reports).
    pub fn index_bytes(&self) -> usize {
        self.table.len() * 16 + self.table.values().map(|v| v.len() * 4).sum::<usize>()
    }

    /// Align a single-end read.
    pub fn align_read(&self, name: &str, seq: &[u8], qual: &[u8]) -> SamRecord {
        let k = self.opts.seed_len;
        let mut best: Option<(i32, u32, bool, gpf_formats::Cigar, u32, u64)> = None;
        let mut second_score = i32::MIN;
        for (reverse, oriented) in [(false, seq.to_vec()), (true, reverse_complement(seq))] {
            if oriented.len() < k {
                continue;
            }
            // Vote on diagonals from a few seeds.
            let mut votes: HashMap<i64, u32> = HashMap::new();
            let stride = ((oriented.len() - k) / self.opts.seeds_per_read.max(1)).max(1);
            let mut off = 0usize;
            while off + k <= oriented.len() {
                if let Some(key) = pack_kmer(&oriented[off..off + k]) {
                    if let Some(bucket) = self.table.get(&key) {
                        if bucket.len() <= self.opts.max_bucket {
                            for &hit in bucket {
                                let diag = hit as i64 - off as i64;
                                *votes.entry(diag - diag.rem_euclid(8)).or_insert(0) += 1;
                            }
                        }
                    }
                }
                off += stride;
            }
            let mut ranked: Vec<(i64, u32)> = votes.into_iter().collect();
            ranked.sort_by_key(|&(d, v)| (std::cmp::Reverse(v), d));
            for &(diag, _) in ranked.iter().take(self.opts.max_candidates) {
                if let Some((score, contig, pos, cigar, edit)) =
                    self.verify(&oriented, diag.max(0) as u64)
                {
                    match &best {
                        Some((bs, ..)) if score <= *bs => {
                            second_score = second_score.max(score);
                        }
                        _ => {
                            if let Some((bs, ..)) = &best {
                                second_score = second_score.max(*bs);
                            }
                            best = Some((score, contig, reverse, cigar, edit, pos));
                        }
                    }
                }
            }
        }
        let Some((score, contig, reverse, cigar, edit, pos)) = best else {
            return SamRecord::unmapped(name, seq.to_vec(), qual.to_vec());
        };
        let mapq = if second_score == i32::MIN {
            60
        } else {
            (((score - second_score) * 6).clamp(0, 60)) as u8
        };
        let (stored_seq, stored_qual) = if reverse {
            let mut q = qual.to_vec();
            q.reverse();
            (reverse_complement(seq), q)
        } else {
            (seq.to_vec(), qual.to_vec())
        };
        let mut flags = SamFlags::default();
        if reverse {
            flags.set(SamFlags::REVERSE);
        }
        SamRecord {
            name: name.to_string(),
            flags,
            contig,
            pos,
            mapq,
            cigar,
            mate_contig: gpf_formats::sam::NO_CONTIG,
            mate_pos: 0,
            tlen: 0,
            seq: stored_seq,
            qual: stored_qual,
            read_group: 1,
            edit_distance: edit as u16,
        }
    }

    fn verify(
        &self,
        oriented: &[u8],
        text_start: u64,
    ) -> Option<(i32, u32, u64, gpf_formats::Cigar, u32)> {
        // Resolve contig.
        let idx = self.contig_offsets.partition_point(|&o| o <= text_start) - 1;
        let pos = text_start - self.contig_offsets[idx];
        let clen = self.contig_lengths[idx];
        let pad = 16u64;
        let w_start = pos.saturating_sub(pad);
        let w_end = (pos + oriented.len() as u64 + pad).min(clen);
        if w_end <= w_start {
            return None;
        }
        let base = self.contig_offsets[idx];
        let window: Vec<u8> = self.text[(base + w_start) as usize..(base + w_end) as usize]
            .iter()
            .map(|&b| rank4(b))
            .collect();
        let ranks: Vec<u8> = oriented.iter().map(|&b| rank4(b)).collect();
        let perfect = oriented.len() as i32 * self.opts.scoring.match_score;
        let threshold = self.opts.min_score_frac * perfect as f64;
        // Bit-parallel prefilter: skip the affine DP when no path can
        // reach the acceptance threshold (output-preserving — see
        // myers::prefilter_allows).
        if !crate::myers::prefilter_allows(
            &ranks,
            &window,
            threshold.ceil() as i64,
            &self.opts.scoring,
        ) {
            return None;
        }
        let aln = fit_align(&ranks, &window, (pos - w_start) as usize, &self.opts.scoring)?;
        if (aln.score as f64) < threshold {
            return None;
        }
        Some((
            aln.score,
            idx as u32,
            w_start + aln.window_start as u64,
            aln.cigar,
            aln.edit_distance,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpf_formats::quality::phred_to_char;

    fn reference() -> ReferenceGenome {
        let mut state = 0xabcdefu64;
        let mut gen = |n: usize| -> Vec<u8> {
            (0..n)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                    b"ACGT"[(state >> 33) as usize % 4]
                })
                .collect()
        };
        ReferenceGenome::from_contigs(vec![("chr1", gen(5000))])
    }

    fn quals(n: usize) -> Vec<u8> {
        vec![phred_to_char(35); n]
    }

    #[test]
    fn aligns_exact_reads() {
        let r = reference();
        let snap = SnapAligner::new(&r);
        for start in [0usize, 777, 2500, 4900 - 100] {
            let read = r.contig_seq(0)[start..start + 100].to_vec();
            let rec = snap.align_read("s", &read, &quals(100));
            assert!(rec.flags.is_mapped(), "start {start}");
            assert_eq!(rec.pos, start as u64, "start {start}");
            assert_eq!(rec.edit_distance, 0);
        }
    }

    #[test]
    fn aligns_reverse_reads() {
        let r = reference();
        let snap = SnapAligner::new(&r);
        let read = reverse_complement(&r.contig_seq(0)[1200..1300]);
        let rec = snap.align_read("rev", &read, &quals(100));
        assert!(rec.flags.is_mapped());
        assert!(rec.flags.is_reverse());
        assert_eq!(rec.pos, 1200);
    }

    #[test]
    fn tolerates_scattered_mismatches() {
        let r = reference();
        let snap = SnapAligner::new(&r);
        let mut read = r.contig_seq(0)[3000..3100].to_vec();
        read[50] = if read[50] == b'A' { b'T' } else { b'A' };
        let rec = snap.align_read("mm", &read, &quals(100));
        assert!(rec.flags.is_mapped());
        assert_eq!(rec.pos, 3000);
        assert_eq!(rec.edit_distance, 1);
    }

    #[test]
    fn unalignable_read_is_unmapped() {
        let r = reference();
        let snap = SnapAligner::new(&r);
        let read: Vec<u8> = (0..100).map(|i| if i % 2 == 0 { b'A' } else { b'C' }).collect();
        let rec = snap.align_read("junk", &read, &quals(100));
        assert!(!rec.flags.is_mapped() || rec.edit_distance > 20);
    }

    #[test]
    fn index_reports_nonzero_footprint() {
        let r = reference();
        let snap = SnapAligner::new(&r);
        assert!(snap.index_bytes() > 5000 * 2, "dense index: {}", snap.index_bytes());
    }

    #[test]
    fn pack_kmer_rejects_n() {
        assert!(pack_kmer(b"ACGTN").is_none());
        assert!(pack_kmer(b"ACGT").is_some());
        assert_ne!(pack_kmer(b"ACGT"), pack_kmer(b"ACGA"));
        // Leading-1 guard distinguishes lengths.
        assert_ne!(pack_kmer(b"A"), pack_kmer(b"AA"));
    }
}
