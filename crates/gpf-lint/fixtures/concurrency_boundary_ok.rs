// Fixture: shim-backed re-exports are the sanctioned route; Arc and
// OnceLock are not schedule-relevant and stay allowed raw.
use gpf_support::chk::atomic::{AtomicU64, Ordering};
use gpf_support::sync::Mutex;
use std::sync::{Arc, OnceLock};

pub fn bump(shared: &Arc<Mutex<u64>>, c: &AtomicU64) -> u64 {
    *shared.lock() += 1;
    c.fetch_add(1, Ordering::SeqCst)
}
