// Fixture: silently discarded results in engine/core code.
pub fn lossy(res: Result<u64, String>, tx: std::sync::mpsc::Sender<u64>) {
    let _ = tx.send(1);
    res.ok();
}
