// Fixture: scoped threads are the sanctioned form outside gpf-support.
pub fn scoped_sum(items: &[u64]) -> u64 {
    std::thread::scope(|s| {
        let h = s.spawn(|| items.iter().sum::<u64>());
        h.join().unwrap_or(0)
    })
}
