// Fixture: literal metric registrations whose names are missing from the
// gpf_trace::names registry (one typo'd counter, one typo'd histogram).
pub fn mistyped() {
    gpf_trace::counter("task.retires").add(1);
    counters::histogram("shuffle.bucket.byte").observe(7);
}
