// Verified read: the fnv64 check sits within the 10-line window.
pub fn restore(frame: &Frame, out: &mut Vec<u8>) -> bool {
    let payload = frame.payload_unverified();
    if fnv64(payload) != frame.checksum {
        return false;
    }
    out.extend_from_slice(payload);
    true
}

pub fn damage_for_test(frame: &Frame) -> Vec<u8> {
    // gpf-lint: allow(spill-read-checksum): the damaged copy feeds a
    // decoder whose own verify is the thing under test.
    frame.payload_unverified().to_vec()
}
