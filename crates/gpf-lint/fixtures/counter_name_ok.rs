// Fixture: the legal shapes — registered literals, const arguments
// (checked at their declaration site), per-event key reads via the method
// form, the accessor declaration itself, an annotated escape hatch, and
// metric-like text inside strings and comments.
pub fn accounted(ev: &Event) {
    gpf_trace::counter("task.retries").add(1);
    counters::histogram("shuffle.bucket.bytes").observe(7);
    gpf_trace::counter(names::TASK_RETRIES).add(1);
    let cpu = ev.counter("cpu_ns");
    // gpf-lint: allow(counter-name-registry): experiment-local scratch metric.
    gpf_trace::counter("scratch.experiment").add(cpu.unwrap_or(0));
    let doc = "counter(\"not.a.metric\")"; // counter("also.not") in a comment
    drop(doc);
}

pub fn counter(name: &'static str) -> u64 {
    name.len() as u64
}
