// Fixture: SeqCst ordering is fine anywhere, and the word Relaxed may
// appear in comments ("Relaxed is banned here") or strings.
use gpf_support::chk::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) -> usize {
    let _hint = "do not use Relaxed here";
    counter.fetch_add(1, Ordering::SeqCst)
}
