// Decodes a spill frame without verifying its checksum first.
pub fn restore(frame: &Frame, out: &mut Vec<u8>) {
    let payload = frame.payload_unverified();
    out.extend_from_slice(payload);
}
