// Fixture: raw std concurrency primitives outside the checker crate.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

pub fn observe(m: &Mutex<u64>, c: &AtomicU64) -> u64 {
    let g = match m.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    *g + c.load(Ordering::SeqCst)
}
