// Fixture: the sanctioned output paths — the trace sink's console, an
// annotated escape hatch, and macro names inside strings/comments.
pub fn quiet(done: usize, total: usize) {
    gpf_trace::sink::console_out(&format!("progress: {done}/{total}"));
    // gpf-lint: allow(no-raw-print): panic hook runs after the sink is gone.
    eprintln!("terminal diagnostic");
    let doc = "call println! at your peril"; // println! in a comment
    let _ = doc;
}
