// Fixture: raw console macros in library code.
pub fn chatty(done: usize, total: usize) {
    println!("progress: {done}/{total}");
    eprintln!("warning: {done} items skipped");
    print!("no newline");
    eprint!("no newline either");
}
