// Fixture: Relaxed with an adjacent `// ordering:` justification — legal
// inside the sanctioned zones (gpf-support/src/par.rs, gpf-trace/src).
use gpf_support::chk::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) -> usize {
    // ordering: Relaxed — pure accumulator; no data is published through it.
    counter.fetch_add(1, Ordering::Relaxed)
}
