// Fixture: results handled, renamed-combinator lookalikes, and an
// explicitly justified discard.
pub fn careful(res: Result<u64, String>) -> u64 {
    match res {
        Ok(v) => v,
        Err(_) => 0,
    }
}

pub fn lookalikes(res: Result<u64, u64>) -> u64 {
    // `.ok_or(...)` / `.unwrap_or(...)` are not discards.
    res.ok_or(7u64).unwrap_or(0)
}

pub fn annotated(tx: std::sync::mpsc::Sender<u64>) {
    // gpf-lint: allow(swallowed-error): receiver hangup here means the
    // session is already shutting down; nothing left to notify.
    let _ = tx.send(1);
}
