// Fixture: shim atomics with Relaxed but no `// ordering:` justification.
use gpf_support::chk::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::Relaxed)
}
