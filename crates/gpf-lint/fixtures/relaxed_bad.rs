// Fixture: raw Relaxed atomics outside gpf-support/src/par.rs.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::Relaxed)
}
