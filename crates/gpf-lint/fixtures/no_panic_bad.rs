// Fixture: every banned panic path in non-test library code.
pub fn violations(o: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = o.unwrap();
    let b = r.expect("boom");
    if a > b {
        panic!("a > b");
    }
    match a {
        0 => todo!(),
        1 => unimplemented!(),
        _ => unreachable!(),
    }
}
