// Fixture: the permitted shapes — propagation, defaults, annotated allows,
// asserts, test code, and panic-looking text inside strings/comments.
pub fn clean(o: Option<u32>, r: Result<u32, ()>) -> Result<u32, ()> {
    let a = o.unwrap_or(0);
    let b = o.unwrap_or_default();
    assert!(a <= 1_000_000, "bounded input");
    debug_assert!(b <= a);
    let msg = "never panic! or unwrap() in messages";
    let _ = msg;
    // A comment may say unwrap() or panic! freely.
    // gpf-lint: allow(no-panic): slot is filled two lines above.
    let c = Some(a).unwrap();
    let _ = c;
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn tests_may_panic() {
        panic!("boom");
    }
}
