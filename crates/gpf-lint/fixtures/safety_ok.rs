// Fixture: unsafe with the required SAFETY comment (same line or the
// comment block directly above).
pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points to at least one readable byte.
    unsafe { *p }
}

pub fn read_second(p: *const u8) -> u8 {
    unsafe { *p.add(1) } // SAFETY: caller guarantees two readable bytes.
}
