// Fixture: free-threading outside gpf-support.
use std::thread;

pub fn fire_and_forget() {
    thread::spawn(|| {});
}
