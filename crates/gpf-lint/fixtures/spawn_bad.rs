// Fixture: free-threading outside gpf-support.
pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}
