//! # gpf-lint
//!
//! Mechanical enforcement of the workspace invariants PR 1 established —
//! the checks a reviewer would otherwise have to re-verify on every change.
//! Std-only, like `gpf-support`: the linter itself must build with
//! `--offline` from a clean checkout.
//!
//! ## Rules
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-panic` | no `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` in non-test library code |
//! | `safety-comment` | every `unsafe` is preceded by (or shares a line with) a `// SAFETY:` comment |
//! | `relaxed-ordering` | `Ordering::Relaxed` only inside `gpf-support/src/par.rs` or `gpf-trace/src`, and only with an adjacent `// ordering:` justification comment |
//! | `thread-spawn` | `thread::spawn` only inside `gpf-support` and `gpf-check` (everyone else uses `gpf_support::par`) |
//! | `concurrency-boundary` | raw `std::sync::atomic`, `std::thread::spawn`, and `std::sync::{Mutex,RwLock,Condvar}` only inside `gpf-check` (the shim home) — everyone else uses the shim-backed re-exports (`gpf_support::chk`, `gpf_support::sync`), so the model checker sees every primitive |
//! | `hermetic-deps` | every manifest dependency is a workspace/path dep — nothing from crates.io |
//! | `no-raw-print` | no `println!`/`eprintln!` in non-test library code — route output through `gpf_trace::sink` (binaries and the sink module itself are exempt) |
//! | `swallowed-error` | no `let _ = ...` / `.ok()` discards in non-test `gpf-engine`/`gpf-core` code — the fault-tolerance layer relies on every error reaching `EngineContext::fail` |
//! | `counter-name-registry` | every literal `counter("...")` / `histogram("...")` registration uses a name declared in `gpf_trace::names` — a typo'd name would silently accumulate into a metric nobody reads |
//!
//! `assert!` / `debug_assert!` are deliberately *not* banned: stating an
//! invariant is encouraged; what the `no-panic` rule bans is using a panic
//! as an error path.
//!
//! ## Allowlisting
//!
//! A violation is suppressed by an annotation on the same line or in the
//! comment block immediately above, **with a mandatory justification**:
//!
//! ```text
//! // gpf-lint: allow(no-panic): scheduler guarantees inputs are Defined.
//! ```
//!
//! An annotation without a justification does not suppress anything.
//!
//! ## Scanning model
//!
//! Rust sources are masked by a small char-level lexer that blanks string
//! literals and comments out of the *code* view (so `"panic!"` in a message
//! string is not a finding) and keeps a parallel *comment* view (where
//! `SAFETY:` and `gpf-lint: allow(...)` annotations live). `#[cfg(test)]`
//! regions are excluded by bracket/brace matching — test code may unwrap
//! freely.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The enforced invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No panicking calls in non-test library code.
    NoPanic,
    /// `unsafe` requires an adjacent `// SAFETY:` comment.
    SafetyComment,
    /// `Ordering::Relaxed` is confined to `gpf-support/src/par.rs` and
    /// `gpf-trace/src`, and every use needs an adjacent `// ordering:`
    /// justification comment.
    RelaxedOrdering,
    /// `thread::spawn` is confined to `gpf-support` and `gpf-check`.
    ThreadSpawn,
    /// Raw `std::sync` concurrency primitives (atomics, `Mutex`, `RwLock`,
    /// `Condvar`) and `std::thread::spawn` are confined to `gpf-check`:
    /// everything else must use the shim-backed re-exports so the model
    /// checker can explore schedules over the real code.
    ConcurrencyBoundary,
    /// Manifest dependencies must be workspace/path deps.
    HermeticDeps,
    /// No raw `println!`/`eprintln!` in library code; console output goes
    /// through `gpf_trace::sink` so one layer owns the terminal.
    NoRawPrint,
    /// No silently discarded results (`let _ = ...`, `.ok()`) in the
    /// engine/core crates: recovery decisions need every error surfaced.
    SwallowedError,
    /// Literal `counter("...")` / `histogram("...")` registrations must use
    /// a name from the `gpf_trace::names` registry; unregistered names
    /// accumulate into metrics no report reads.
    CounterNameRegistry,
    /// Every `.payload_unverified()` spill-frame read needs a `fnv64`
    /// checksum verification within ±10 lines: spilled partitions are the
    /// one place engine data leaves tracked memory, and an unverified
    /// decode would let read-back corruption flow silently into results.
    SpillReadChecksum,
}

impl Rule {
    /// Stable kebab-case rule name (used in `allow(...)` annotations and
    /// `--json` output).
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::SafetyComment => "safety-comment",
            Rule::RelaxedOrdering => "relaxed-ordering",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::ConcurrencyBoundary => "concurrency-boundary",
            Rule::HermeticDeps => "hermetic-deps",
            Rule::NoRawPrint => "no-raw-print",
            Rule::SwallowedError => "swallowed-error",
            Rule::CounterNameRegistry => "counter-name-registry",
            Rule::SpillReadChecksum => "spill-read-checksum",
        }
    }

    /// Every rule, in reporting order.
    pub fn all() -> [Rule; 10] {
        [
            Rule::NoPanic,
            Rule::SafetyComment,
            Rule::RelaxedOrdering,
            Rule::ThreadSpawn,
            Rule::ConcurrencyBoundary,
            Rule::HermeticDeps,
            Rule::NoRawPrint,
            Rule::SwallowedError,
            Rule::CounterNameRegistry,
            Rule::SpillReadChecksum,
        ]
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Violated rule.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

impl Finding {
    /// Render as a JSON object (std-only serializer).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.rule,
            json_escape(&self.file),
            self.line,
            json_escape(&self.message)
        )
    }
}

/// Escape a string for embedding in JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Source masking
// ---------------------------------------------------------------------------

/// A Rust source split into parallel per-line views: `code` with string
/// literals and comments blanked, `comments` with only comment text kept.
pub struct MaskedSource {
    /// Per-line code text (strings/comments replaced by spaces).
    pub code: Vec<String>,
    /// Per-line comment text (everything else replaced by spaces).
    pub comments: Vec<String>,
    /// Per-line flag: inside a `#[cfg(test)]` region.
    pub is_test: Vec<bool>,
}

enum LexState {
    Code,
    LineComment,
    BlockComment(u32),
    Str { escaped: bool },
    RawStr { hashes: usize },
    CharLit { escaped: bool },
}

/// Does a raw-string literal start at `chars[i]`? Returns `(hashes,
/// consumed)` covering the optional `b`, the `r`, the hashes, and the
/// opening quote.
fn raw_string_start(chars: &[char], i: usize) -> Option<(usize, usize)> {
    // `r` / `br` must not be the tail of an identifier (`var`, `attr`, ...).
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j + 1 - i))
    } else {
        None
    }
}

/// Mask a Rust source into code/comment line views and mark test regions.
pub fn mask(source: &str) -> MaskedSource {
    let chars: Vec<char> = source.chars().collect();
    let mut code_lines: Vec<String> = Vec::new();
    let mut comment_lines: Vec<String> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut st = LexState::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(st, LexState::LineComment) {
                st = LexState::Code;
            }
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
            i += 1;
            continue;
        }
        match st {
            LexState::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    st = LexState::LineComment;
                    code.push_str("  ");
                    comment.push_str("//");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = LexState::BlockComment(1);
                    code.push_str("  ");
                    comment.push_str("/*");
                    i += 2;
                } else if let Some((hashes, consumed)) = raw_string_start(&chars, i) {
                    st = LexState::RawStr { hashes };
                    for _ in 0..consumed {
                        code.push(' ');
                        comment.push(' ');
                    }
                    i += consumed;
                } else if c == '"' {
                    st = LexState::Str { escaped: false };
                    code.push(' ');
                    comment.push(' ');
                    i += 1;
                } else if c == '\'' {
                    // Lifetime/label (`'a`, `'static`) vs char literal
                    // (`'a'`, `'\n'`): an identifier char NOT followed by a
                    // closing quote means lifetime.
                    let is_lifetime = chars
                        .get(i + 1)
                        .map(|c1| (c1.is_alphanumeric() || *c1 == '_') && chars.get(i + 2) != Some(&'\''))
                        .unwrap_or(false);
                    if is_lifetime {
                        code.push('\'');
                        comment.push(' ');
                        i += 1;
                    } else {
                        st = LexState::CharLit { escaped: false };
                        code.push(' ');
                        comment.push(' ');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    comment.push(' ');
                    i += 1;
                }
            }
            LexState::LineComment => {
                code.push(' ');
                comment.push(c);
                i += 1;
            }
            LexState::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    code.push_str("  ");
                    comment.push_str("*/");
                    i += 2;
                    if depth == 1 {
                        st = LexState::Code;
                    } else {
                        st = LexState::BlockComment(depth - 1);
                    }
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    code.push_str("  ");
                    comment.push_str("/*");
                    i += 2;
                    st = LexState::BlockComment(depth + 1);
                } else {
                    code.push(' ');
                    comment.push(c);
                    i += 1;
                }
            }
            LexState::Str { escaped } => {
                code.push(' ');
                comment.push(' ');
                if escaped {
                    st = LexState::Str { escaped: false };
                } else if c == '\\' {
                    st = LexState::Str { escaped: true };
                } else if c == '"' {
                    st = LexState::Code;
                }
                i += 1;
            }
            LexState::RawStr { hashes } => {
                if c == '"' {
                    let closes = (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closes {
                        for _ in 0..=hashes {
                            code.push(' ');
                            comment.push(' ');
                        }
                        i += 1 + hashes;
                        st = LexState::Code;
                        continue;
                    }
                }
                code.push(' ');
                comment.push(' ');
                i += 1;
            }
            LexState::CharLit { escaped } => {
                code.push(' ');
                comment.push(' ');
                if escaped {
                    st = LexState::CharLit { escaped: false };
                } else if c == '\\' {
                    st = LexState::CharLit { escaped: true };
                } else if c == '\'' {
                    st = LexState::Code;
                }
                i += 1;
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        code_lines.push(code);
        comment_lines.push(comment);
    }
    let is_test = mark_test_regions(&code_lines);
    MaskedSource { code: code_lines, comments: comment_lines, is_test }
}

/// Mark lines belonging to `#[cfg(test)]` items by matching the attribute's
/// brackets and then the item's braces.
fn mark_test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut is_test = vec![false; code_lines.len()];
    for (start, line) in code_lines.iter().enumerate() {
        if !line.contains("cfg(test)") || !line.contains("#[") {
            continue;
        }
        // From the attribute onward, find the item's opening `{` (a `;`
        // first means a braceless item — nothing more to mark).
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut end = start;
        'scan: for (li, l) in code_lines.iter().enumerate().skip(start) {
            for ch in l.chars() {
                match ch {
                    '{' => {
                        opened = true;
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            end = li;
                            break 'scan;
                        }
                    }
                    ';' if !opened && depth == 0 => {
                        end = li;
                        break 'scan;
                    }
                    _ => {}
                }
            }
            end = li;
        }
        for flag in is_test.iter_mut().take(end + 1).skip(start) {
            *flag = true;
        }
    }
    is_test
}

// ---------------------------------------------------------------------------
// Rule checks
// ---------------------------------------------------------------------------

/// Is an `allow(rule)` annotation (with a justification) attached to
/// `line` — on the same line or in the comment block directly above?
fn is_allowed(masked: &MaskedSource, line: usize, rule: Rule) -> bool {
    let pat = format!("gpf-lint: allow({})", rule.name());
    let annotated = |l: usize| -> bool {
        let Some(c) = masked.comments.get(l) else {
            return false;
        };
        let Some(pos) = c.find(&pat) else {
            return false;
        };
        // Mandatory justification: `allow(rule): <nonempty reason>`.
        let rest = c[pos + pat.len()..].trim_start();
        matches!(rest.strip_prefix(':').map(str::trim), Some(reason) if !reason.is_empty())
    };
    if annotated(line) {
        return true;
    }
    // Walk up through the contiguous comment-only/blank block above.
    let mut l = line;
    while l > 0 {
        l -= 1;
        let code_blank = masked.code.get(l).map(|c| c.trim().is_empty()).unwrap_or(true);
        if !code_blank {
            return false;
        }
        if annotated(l) {
            return true;
        }
    }
    false
}

/// Does `line` (or the contiguous comment/blank block directly above it)
/// carry `marker` in a comment? Used for `// SAFETY:` adjacency.
fn has_adjacent_marker(masked: &MaskedSource, line: usize, marker: &str) -> bool {
    let has = |l: usize| masked.comments.get(l).map(|c| c.contains(marker)).unwrap_or(false);
    if has(line) {
        return true;
    }
    let mut l = line;
    while l > 0 {
        l -= 1;
        if has(l) {
            return true;
        }
        let code_blank = masked.code.get(l).map(|c| c.trim().is_empty()).unwrap_or(true);
        if !code_blank {
            return false;
        }
    }
    false
}

/// Is `needle` present in `hay` as a token (no identifier char on either
/// side)? Returns every match position.
fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let hb = hay.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = hay.get(from..).and_then(|s| s.find(needle)) {
        let pos = from + rel;
        let before_ok = pos == 0 || {
            let b = hb[pos - 1] as char;
            !(b.is_alphanumeric() || b == '_')
        };
        let after = pos + needle.len();
        let after_ok = after >= hb.len() || {
            let a = hb[after] as char;
            !(a.is_alphanumeric() || a == '_')
        };
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + needle.len();
    }
    out
}

/// `(token, what to say)` pairs for the `no-panic` rule. Tokens starting
/// with `.` are matched verbatim (the dot prevents `unwrap_or` matches);
/// the rest are token-matched.
const PANIC_TOKENS: [(&str, &str); 6] = [
    (".unwrap()", "`.unwrap()`"),
    (".expect(", "`.expect()`"),
    ("panic!", "`panic!`"),
    ("unreachable!", "`unreachable!`"),
    ("todo!", "`todo!`"),
    ("unimplemented!", "`unimplemented!`"),
];

/// Banned console macros for the `no-raw-print` rule (token-matched, so
/// `print!` does not also fire inside `println!` or `eprint!`).
const PRINT_TOKENS: [&str; 4] = ["println!", "eprintln!", "print!", "eprint!"];

/// Registered metric names for the `counter-name-registry` rule —
/// gpf-lint's dependency-free copy of `gpf_trace::names::ALL_COUNTERS` and
/// `ALL_HISTOGRAMS` merged. A cross-check test in this crate's test suite
/// (which may use dev-dependencies) keeps the copy in sync with the
/// registry.
pub const KNOWN_METRIC_NAMES: &[&str] = &[
    "align.prefilter.hit",
    "align.prefilter.skip",
    "align.sw.cells",
    "codec.bases",
    "codec.deserialize.bytes",
    "codec.deserialize.records",
    "codec.serialize.bytes",
    "codec.serialize.records",
    "fault.injected",
    "heap.alloc.bytes",
    "heap.alloc.count",
    "heap.freed.bytes",
    "heap.size_class",
    "heap.tag.repartition",
    "heap.tag.serde",
    "heap.tag.shuffle",
    "heap.tag.spill",
    "heap.tag.task",
    "heap.tag.untagged",
    "mem.budget.breach",
    "mem.budget.dropped_clean",
    "mem.budget.restored",
    "mem.budget.restored_bytes",
    "mem.budget.spilled",
    "mem.budget.spilled_bytes",
    "pairhmm.cells",
    "par.busy_ns",
    "par.chunks",
    "par.idle_ns",
    "par.steals",
    "repartition.cap_hit",
    "repartition.merged",
    "repartition.moved_records",
    "repartition.splits",
    "shuffle.bucket.bytes",
    "shuffle.bucket.records",
    "shuffle.partitions.cloned",
    "shuffle.partitions.moved",
    "shuffle.recomputed",
    "shuffle.scratch.allocated",
    "shuffle.scratch.reused",
    "spec.launched",
    "spec.won",
    "task.retries",
    "trace.dropped",
];

/// Literal first arguments of `counter("...")` / `histogram("...")`
/// registration calls on one line. `code` is the masked view (comments and
/// string contents blanked, char-aligned with the source); `raw` is the
/// original line, used to recover the blanked literal. Method calls
/// (`ev.counter(...)` reads a per-event key, not the registry) and
/// declarations (`fn counter(`) are not registrations; non-literal
/// arguments (const names) are checked at their declaration site instead.
fn metric_literal_args(code: &str, raw: &str, fn_name: &str) -> Vec<String> {
    let code_c: Vec<char> = code.chars().collect();
    let raw_c: Vec<char> = raw.chars().collect();
    let mut out = Vec::new();
    for pos in token_positions(code, fn_name) {
        // token_positions reports byte offsets; the views align by char.
        let start = code[..pos].chars().count();
        let prefix: String = code_c[..start].iter().collect();
        let t = prefix.trim_end();
        if t.ends_with('.') || t.ends_with("fn") {
            continue;
        }
        let mut j = start + fn_name.chars().count();
        while j < code_c.len() && code_c[j].is_whitespace() {
            j += 1;
        }
        if code_c.get(j) != Some(&'(') {
            continue;
        }
        // The literal itself is blanked in the code view — read it from
        // the raw line at the same char positions.
        let mut k = j + 1;
        while k < raw_c.len() && raw_c[k].is_whitespace() {
            k += 1;
        }
        if raw_c.get(k) != Some(&'"') {
            continue;
        }
        k += 1;
        let mut lit = String::new();
        while k < raw_c.len() && raw_c[k] != '"' && raw_c[k] != '\\' {
            lit.push(raw_c[k]);
            k += 1;
        }
        if raw_c.get(k) == Some(&'"') {
            out.push(lit);
        }
    }
    out
}

/// Lint one Rust source. `file` is the workspace-relative path used both
/// for reporting and for the location-scoped rules (`relaxed-ordering`,
/// `thread-spawn`, `no-raw-print`).
pub fn lint_source(file: &str, source: &str) -> Vec<Finding> {
    let masked = mask(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();
    let in_par = file.ends_with("gpf-support/src/par.rs");
    let in_support = file.contains("gpf-support/");
    // gpf-check IS the shim / model-checker home: it implements the memory
    // model, so it legitimately holds raw std primitives and Relaxed loads.
    let in_check = file.contains("gpf-check/");
    // Files where `Relaxed` is admissible at all — and then only with an
    // adjacent `// ordering:` justification comment.
    let relaxed_zone = in_par || file.contains("gpf-trace/src/");
    // The crates where a dropped `Result` can hide a lost task or a corrupt
    // shuffle segment from the recovery machinery.
    let error_strict = file.contains("gpf-engine/") || file.contains("gpf-core/");
    // Binaries own their terminal; the sink module is where library output
    // funnels to. Everything else must go through the sink.
    let may_print = file.ends_with("/main.rs")
        || file.contains("/bin/")
        || file.ends_with("gpf-trace/src/sink.rs");
    for (idx, code) in masked.code.iter().enumerate() {
        if masked.is_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let lineno = idx + 1;
        for (tok, what) in PANIC_TOKENS {
            let hit = if let Some(stripped) = tok.strip_prefix('.') {
                // `.unwrap()` / `.expect(`: the leading dot is its own
                // boundary; just require the verbatim sequence.
                let _ = stripped;
                code.contains(tok)
            } else {
                !token_positions(code, tok).is_empty()
            };
            if hit && !is_allowed(&masked, idx, Rule::NoPanic) {
                findings.push(Finding {
                    rule: Rule::NoPanic,
                    file: file.to_string(),
                    line: lineno,
                    message: format!(
                        "{what} in library code; propagate an error or annotate \
                         `// gpf-lint: allow(no-panic): <why it cannot fire>`"
                    ),
                });
            }
        }
        if !token_positions(code, "unsafe").is_empty() {
            let has_safety = has_adjacent_marker(&masked, idx, "SAFETY:");
            if !has_safety && !is_allowed(&masked, idx, Rule::SafetyComment) {
                findings.push(Finding {
                    rule: Rule::SafetyComment,
                    file: file.to_string(),
                    line: lineno,
                    message: "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                });
            }
        }
        if !in_check
            && !token_positions(code, "Relaxed").is_empty()
            && !is_allowed(&masked, idx, Rule::RelaxedOrdering)
        {
            if !relaxed_zone {
                findings.push(Finding {
                    rule: Rule::RelaxedOrdering,
                    file: file.to_string(),
                    line: lineno,
                    message: "`Ordering::Relaxed` outside gpf-support/src/par.rs and \
                              gpf-trace/src; use the gpf_support primitives instead of \
                              raw atomics"
                        .to_string(),
                });
            } else if !has_adjacent_marker(&masked, idx, "ordering:") {
                findings.push(Finding {
                    rule: Rule::RelaxedOrdering,
                    file: file.to_string(),
                    line: lineno,
                    message: "`Ordering::Relaxed` without an adjacent `// ordering:` \
                              comment justifying why relaxed is sufficient here"
                        .to_string(),
                });
            }
        }
        if !in_support
            && !in_check
            && code.contains("thread::spawn")
            && !is_allowed(&masked, idx, Rule::ThreadSpawn)
        {
            findings.push(Finding {
                rule: Rule::ThreadSpawn,
                file: file.to_string(),
                line: lineno,
                message: "`thread::spawn` outside gpf-support; use gpf_support::par for \
                          scoped parallelism"
                    .to_string(),
            });
        }
        if !in_check && !is_allowed(&masked, idx, Rule::ConcurrencyBoundary) {
            let raw_hit = if code.contains("std::sync::atomic") {
                Some("raw `std::sync::atomic`")
            } else if code.contains("std::thread::spawn") {
                Some("raw `std::thread::spawn`")
            } else if code.contains("std::sync::")
                && ["Mutex", "RwLock", "Condvar"]
                    .iter()
                    .any(|t| !token_positions(code, t).is_empty())
            {
                Some("raw `std::sync` lock primitive")
            } else {
                None
            };
            if let Some(what) = raw_hit {
                findings.push(Finding {
                    rule: Rule::ConcurrencyBoundary,
                    file: file.to_string(),
                    line: lineno,
                    message: format!(
                        "{what} outside gpf-check; use the shim-backed re-exports \
                         (gpf_support::chk / gpf_support::sync) so the model checker \
                         can explore this code's schedules"
                    ),
                });
            }
        }
        if error_strict {
            let discards_binding = code.contains("let _ =")
                || code.contains("let _=")
                || code.contains("let _:")
                || code.contains("let _ :");
            let drops_result = code.contains(".ok()");
            if (discards_binding || drops_result)
                && !is_allowed(&masked, idx, Rule::SwallowedError)
            {
                let what = if discards_binding { "`let _ = ...`" } else { "`.ok()`" };
                findings.push(Finding {
                    rule: Rule::SwallowedError,
                    file: file.to_string(),
                    line: lineno,
                    message: format!(
                        "{what} silently discards a result in engine/core code; handle \
                         the error, route it through EngineContext::fail, or annotate \
                         `// gpf-lint: allow(swallowed-error): <why the drop is safe>`"
                    ),
                });
            }
        }
        if !may_print {
            for tok in PRINT_TOKENS {
                if !token_positions(code, tok).is_empty()
                    && !is_allowed(&masked, idx, Rule::NoRawPrint)
                {
                    findings.push(Finding {
                        rule: Rule::NoRawPrint,
                        file: file.to_string(),
                        line: lineno,
                        message: format!(
                            "`{tok}` in library code; route output through \
                             gpf_trace::sink::console_out/console_err (or annotate \
                             `// gpf-lint: allow(no-raw-print): <why>`)"
                        ),
                    });
                }
            }
        }
        // Call sites only (`.payload_unverified`): the declaration itself
        // carries no payload to verify.
        if code.contains(".payload_unverified")
            && !is_allowed(&masked, idx, Rule::SpillReadChecksum)
        {
            let lo = idx.saturating_sub(10);
            let hi = (idx + 11).min(masked.code.len());
            let verified =
                (lo..hi).any(|l| !token_positions(&masked.code[l], "fnv64").is_empty());
            if !verified {
                findings.push(Finding {
                    rule: Rule::SpillReadChecksum,
                    file: file.to_string(),
                    line: lineno,
                    message: "`.payload_unverified()` without a `fnv64` checksum verify \
                              within 10 lines; spill read-backs must verify every frame \
                              before decoding (or annotate \
                              `// gpf-lint: allow(spill-read-checksum): <why>`)"
                        .to_string(),
                });
            }
        }
        let raw = raw_lines.get(idx).copied().unwrap_or("");
        for fn_name in ["counter", "histogram"] {
            for lit in metric_literal_args(code, raw, fn_name) {
                if !KNOWN_METRIC_NAMES.contains(&lit.as_str())
                    && !is_allowed(&masked, idx, Rule::CounterNameRegistry)
                {
                    findings.push(Finding {
                        rule: Rule::CounterNameRegistry,
                        file: file.to_string(),
                        line: lineno,
                        message: format!(
                            "`{fn_name}(\"{lit}\")` registers a metric name missing \
                             from gpf_trace::names; declare it there (and in \
                             ALL_COUNTERS / ALL_HISTOGRAMS) and use the const"
                        ),
                    });
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Manifest lint
// ---------------------------------------------------------------------------

/// Lint one `Cargo.toml` for the hermetic-build invariant: every dependency
/// entry resolves inside the workspace (`workspace = true` or `path = ...`);
/// `[workspace.dependencies]` entries must be `path` deps.
pub fn lint_manifest(file: &str, source: &str) -> Vec<Finding> {
    #[derive(PartialEq)]
    enum Section {
        DepTable,
        WorkspaceDeps,
        /// `[dependencies.foo]`-style subtable: valid iff some key inside
        /// is `path` or `workspace`.
        DepSubtable { header_line: usize, name: String, seen_local: bool },
        Other,
    }
    let mut findings = Vec::new();
    let mut section = Section::Other;
    let close_subtable = |findings: &mut Vec<Finding>, section: &Section| {
        if let Section::DepSubtable { header_line, name, seen_local } = section {
            if !seen_local {
                findings.push(Finding {
                    rule: Rule::HermeticDeps,
                    file: file.to_string(),
                    line: header_line + 1,
                    message: format!(
                        "dependency `{name}` is not a workspace/path dependency; the \
                         workspace builds offline only"
                    ),
                });
            }
        }
    };
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            close_subtable(&mut findings, &section);
            let name = line.trim_matches(|c| c == '[' || c == ']').trim();
            section = if name == "workspace.dependencies" {
                Section::WorkspaceDeps
            } else if name == "dependencies"
                || name == "dev-dependencies"
                || name == "build-dependencies"
                || name.ends_with(".dependencies")
            {
                Section::DepTable
            } else if let Some(dep) = name
                .strip_prefix("dependencies.")
                .or_else(|| name.strip_prefix("dev-dependencies."))
                .or_else(|| name.strip_prefix("build-dependencies."))
            {
                Section::DepSubtable {
                    header_line: idx,
                    name: dep.to_string(),
                    seen_local: false,
                }
            } else {
                Section::Other
            };
            continue;
        }
        let local = line.contains("workspace = true") || line.contains("path =");
        match &mut section {
            Section::DepTable => {
                if !local {
                    let dep = line.split('=').next().unwrap_or(line).trim().trim_matches('"');
                    findings.push(Finding {
                        rule: Rule::HermeticDeps,
                        file: file.to_string(),
                        line: idx + 1,
                        message: format!(
                            "dependency `{dep}` is not a workspace/path dependency; the \
                             workspace builds offline only"
                        ),
                    });
                }
            }
            Section::WorkspaceDeps => {
                if !line.contains("path =") {
                    let dep = line.split('=').next().unwrap_or(line).trim().trim_matches('"');
                    findings.push(Finding {
                        rule: Rule::HermeticDeps,
                        file: file.to_string(),
                        line: idx + 1,
                        message: format!(
                            "[workspace.dependencies] entry `{dep}` must be a `path` \
                             dependency (hermetic build)"
                        ),
                    });
                }
            }
            Section::DepSubtable { seen_local, .. } => {
                if local || line.starts_with("path") || line.starts_with("workspace") {
                    *seen_local = true;
                }
            }
            Section::Other => {}
        }
    }
    close_subtable(&mut findings, &section);
    findings
}

// ---------------------------------------------------------------------------
// Tree walking
// ---------------------------------------------------------------------------

/// Recursively collect `.rs` files under `dir`, sorted for deterministic
/// output.
fn rust_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative label with forward slashes.
fn rel_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint the whole workspace rooted at `root`: every `crates/*/src/**/*.rs`
/// plus the root and per-crate manifests.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        let text = fs::read_to_string(&root_manifest)?;
        findings.extend(lint_manifest(&rel_label(root, &root_manifest), &text));
    }
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let manifest = crate_dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)?;
            findings.extend(lint_manifest(&rel_label(root, &manifest), &text));
        }
        let src = crate_dir.join("src");
        if src.is_dir() {
            let mut files = Vec::new();
            rust_files(&src, &mut files)?;
            for file in files {
                let text = fs::read_to_string(&file)?;
                findings.extend(lint_source(&rel_label(root, &file), &text));
            }
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_strings_and_comments() {
        let src = "let x = \"panic!\"; // panic! here\nlet y = 1;\n";
        let m = mask(src);
        assert!(!m.code[0].contains("panic!"));
        assert!(m.comments[0].contains("panic! here"));
        assert!(m.code[1].contains("let y = 1;"));
    }

    #[test]
    fn masking_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(s: &'a str) { let r = r#\"unsafe // \"#; let c = '\"'; }\n";
        let m = mask(src);
        assert!(!m.code[0].contains("unsafe"));
        assert!(m.code[0].contains("fn f<'a>"));
        assert!(m.comments[0].trim().is_empty());
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "fn a() { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\n";
        let f = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn allow_annotation_requires_reason() {
        let with_reason =
            "// gpf-lint: allow(no-panic): provably infallible.\nlet v = o.unwrap();\n";
        assert!(lint_source("crates/x/src/lib.rs", with_reason).is_empty());
        let without_reason = "// gpf-lint: allow(no-panic):\nlet v = o.unwrap();\n";
        assert_eq!(lint_source("crates/x/src/lib.rs", without_reason).len(), 1);
    }

    #[test]
    fn unwrap_or_is_not_a_violation() {
        let src = "let v = o.unwrap_or(0); let w = o.unwrap_or_default();\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn relaxed_needs_zone_and_justification() {
        let bare = "let c = x.fetch_add(1, Ordering::Relaxed);\n";
        let justified =
            "// ordering: Relaxed — pure accumulator.\nlet c = x.fetch_add(1, Ordering::Relaxed);\n";
        // In-zone without a justification comment: flagged.
        assert_eq!(lint_source("crates/gpf-support/src/par.rs", bare).len(), 1);
        // In-zone with an adjacent `// ordering:` comment: clean.
        assert!(lint_source("crates/gpf-support/src/par.rs", justified).is_empty());
        assert!(lint_source("crates/gpf-trace/src/counters.rs", justified).is_empty());
        // Outside the zones: flagged even when justified.
        assert_eq!(lint_source("crates/gpf-engine/src/context.rs", justified).len(), 1);
        // The checker crate implements the memory model and is exempt.
        assert!(lint_source("crates/gpf-check/src/rt/mod.rs", bare).is_empty());
    }

    #[test]
    fn concurrency_boundary_confines_raw_primitives() {
        let atomic = "use std::sync::atomic::AtomicUsize;\n";
        let spawn = "let h = std::thread::spawn(|| {});\n";
        let lock = "use std::sync::Mutex;\n";
        for src in [atomic, spawn, lock] {
            let f = lint_source("crates/gpf-core/src/process.rs", src);
            assert!(
                f.iter().any(|f| f.rule == Rule::ConcurrencyBoundary),
                "expected concurrency-boundary for {src:?}, got {f:?}"
            );
            assert!(lint_source("crates/gpf-check/src/shim/thread.rs", src).is_empty());
        }
        // `Arc` / `OnceLock` are not schedule-relevant and stay allowed.
        let arc = "use std::sync::Arc;\nuse std::sync::OnceLock;\n";
        assert!(lint_source("crates/gpf-core/src/process.rs", arc).is_empty());
    }

    #[test]
    fn manifest_flags_external_deps() {
        let bad = "[dependencies]\nserde = \"1\"\ngpf-support.workspace = true\n";
        let f = lint_manifest("crates/x/Cargo.toml", bad);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("serde"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn json_escapes_quotes() {
        let f = Finding {
            rule: Rule::NoPanic,
            file: "a.rs".into(),
            line: 3,
            message: "say \"hi\"".into(),
        };
        assert!(f.to_json().contains("\\\"hi\\\""));
    }
}
