//! `gpf-lint` CLI — walk the workspace and report invariant violations.
//!
//! ```text
//! gpf-lint [--root DIR] [--json]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error — CI gates
//! on the exit code (`scripts/ci.sh`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut explicit_root = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => {
                    root = PathBuf::from(dir);
                    explicit_root = true;
                }
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: gpf-lint [--root DIR] [--json]\n\
                     rules: {}",
                    gpf_lint::Rule::all().map(|r| r.name()).join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // `cargo run -p gpf-lint` runs from the workspace root; fall back to the
    // manifest's grandparent so the binary also works from a crate dir.
    if !explicit_root && !root.join("crates").is_dir() {
        let from_manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        if from_manifest.join("crates").is_dir() {
            root = from_manifest;
        }
    }

    let findings = match gpf_lint::lint_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("gpf-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        let objects: Vec<String> = findings.iter().map(|f| f.to_json()).collect();
        println!("[{}]", objects.join(","));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            eprintln!("gpf-lint: clean");
        } else {
            eprintln!("gpf-lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("gpf-lint: {msg}\nusage: gpf-lint [--root DIR] [--json]");
    ExitCode::from(2)
}
