//! The linter itself is dependency-free, so `KNOWN_METRIC_NAMES` is a
//! copy of the gpf-trace registry; this cross-check (tests may use
//! dev-dependencies) keeps the two lists from drifting.

#[test]
fn known_metric_names_match_gpf_trace_registry() {
    let mut registry: Vec<&str> = gpf_trace::names::ALL_COUNTERS
        .iter()
        .chain(gpf_trace::names::ALL_HISTOGRAMS)
        .copied()
        .collect();
    registry.sort_unstable();
    assert_eq!(
        gpf_lint::KNOWN_METRIC_NAMES,
        registry.as_slice(),
        "gpf-lint's KNOWN_METRIC_NAMES drifted from gpf_trace::names"
    );
}
