//! Per-rule fixture tests: every rule has a positive fixture (must be
//! flagged) and a negative fixture (must pass clean).

use gpf_lint::{lint_manifest, lint_source, Rule};

fn rules_hit(findings: &[gpf_lint::Finding]) -> Vec<Rule> {
    let mut rules: Vec<Rule> = findings.iter().map(|f| f.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn no_panic_positive() {
    let f = lint_source(
        "crates/x/src/lib.rs",
        include_str!("../fixtures/no_panic_bad.rs"),
    );
    assert_eq!(rules_hit(&f), vec![Rule::NoPanic]);
    // One finding per banned token: unwrap, expect, panic!, todo!,
    // unimplemented!, unreachable!.
    assert_eq!(f.len(), 6, "{f:?}");
    let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![3, 4, 6, 9, 10, 11]);
}

#[test]
fn no_panic_negative() {
    let f = lint_source(
        "crates/x/src/lib.rs",
        include_str!("../fixtures/no_panic_ok.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn safety_comment_positive() {
    let f = lint_source(
        "crates/x/src/lib.rs",
        include_str!("../fixtures/safety_bad.rs"),
    );
    assert_eq!(rules_hit(&f), vec![Rule::SafetyComment]);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].line, 3);
}

#[test]
fn safety_comment_negative() {
    let f = lint_source(
        "crates/x/src/lib.rs",
        include_str!("../fixtures/safety_ok.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn relaxed_ordering_positive() {
    // Outside the sanctioned zones a Relaxed is flagged even if justified.
    for bad in [
        include_str!("../fixtures/relaxed_bad.rs"),
        include_str!("../fixtures/relaxed_justified.rs"),
    ] {
        let f = lint_source("crates/gpf-engine/src/context.rs", bad);
        assert_eq!(rules_hit(&f), vec![Rule::RelaxedOrdering]);
        assert_eq!(f.len(), 1, "{f:?}");
    }
    // Inside a zone, a Relaxed without a `// ordering:` comment is flagged.
    let in_zone = lint_source(
        "crates/gpf-support/src/par.rs",
        include_str!("../fixtures/relaxed_bad.rs"),
    );
    assert_eq!(rules_hit(&in_zone), vec![Rule::RelaxedOrdering]);
    assert_eq!(in_zone.len(), 1, "{in_zone:?}");
    assert_eq!(in_zone[0].line, 5);
    assert!(in_zone[0].message.contains("ordering:"), "{in_zone:?}");
}

#[test]
fn relaxed_ordering_negative() {
    let f = lint_source(
        "crates/gpf-engine/src/context.rs",
        include_str!("../fixtures/relaxed_ok.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
    // A justified Relaxed is legal in both sanctioned zones.
    for zone in ["crates/gpf-support/src/par.rs", "crates/gpf-trace/src/counters.rs"] {
        let in_zone = lint_source(zone, include_str!("../fixtures/relaxed_justified.rs"));
        assert!(in_zone.is_empty(), "{zone}: {in_zone:?}");
    }
    // The checker crate implements the memory model and is exempt.
    let in_check = lint_source(
        "crates/gpf-check/src/rt/mod.rs",
        include_str!("../fixtures/relaxed_bad.rs"),
    );
    assert!(in_check.is_empty(), "{in_check:?}");
}

#[test]
fn thread_spawn_positive() {
    let f = lint_source(
        "crates/gpf-engine/src/dataset.rs",
        include_str!("../fixtures/spawn_bad.rs"),
    );
    assert_eq!(rules_hit(&f), vec![Rule::ThreadSpawn]);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].line, 5);
}

#[test]
fn thread_spawn_negative() {
    let f = lint_source(
        "crates/gpf-engine/src/dataset.rs",
        include_str!("../fixtures/spawn_ok.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
    // gpf-support and the checker crate itself may spawn.
    for exempt in ["crates/gpf-support/src/sync.rs", "crates/gpf-check/src/shim/thread.rs"] {
        let f = lint_source(exempt, include_str!("../fixtures/spawn_bad.rs"));
        assert!(f.is_empty(), "{exempt}: {f:?}");
    }
}

#[test]
fn concurrency_boundary_positive() {
    let f = lint_source(
        "crates/gpf-core/src/process.rs",
        include_str!("../fixtures/concurrency_boundary_bad.rs"),
    );
    assert_eq!(rules_hit(&f), vec![Rule::ConcurrencyBoundary]);
    // One finding per raw import: std::sync::atomic, std::sync::{Condvar, Mutex}.
    assert_eq!(f.len(), 2, "{f:?}");
    let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![2, 3]);
}

#[test]
fn concurrency_boundary_negative() {
    let f = lint_source(
        "crates/gpf-core/src/process.rs",
        include_str!("../fixtures/concurrency_boundary_ok.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
    // The checker crate owns the raw primitives.
    let in_check = lint_source(
        "crates/gpf-check/src/rt/mod.rs",
        include_str!("../fixtures/concurrency_boundary_bad.rs"),
    );
    assert!(in_check.is_empty(), "{in_check:?}");
}

#[test]
fn no_raw_print_positive() {
    let f = lint_source(
        "crates/x/src/lib.rs",
        include_str!("../fixtures/no_raw_print_bad.rs"),
    );
    assert_eq!(rules_hit(&f), vec![Rule::NoRawPrint]);
    // One finding per macro: println!, eprintln!, print!, eprint!.
    assert_eq!(f.len(), 4, "{f:?}");
    let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![3, 4, 5, 6]);
}

#[test]
fn no_raw_print_negative() {
    let f = lint_source(
        "crates/x/src/lib.rs",
        include_str!("../fixtures/no_raw_print_ok.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
    // Binaries and the sink module itself may print freely.
    for exempt in [
        "crates/x/src/main.rs",
        "crates/x/src/bin/tool.rs",
        "crates/gpf-trace/src/sink.rs",
    ] {
        let f = lint_source(exempt, include_str!("../fixtures/no_raw_print_bad.rs"));
        assert!(f.is_empty(), "{exempt}: {f:?}");
    }
}

#[test]
fn swallowed_error_positive() {
    let f = lint_source(
        "crates/gpf-engine/src/dataset.rs",
        include_str!("../fixtures/swallowed_error_bad.rs"),
    );
    assert_eq!(rules_hit(&f), vec![Rule::SwallowedError]);
    // One finding per discard: `let _ =`, `.ok()`.
    assert_eq!(f.len(), 2, "{f:?}");
    let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![3, 4]);
}

#[test]
fn swallowed_error_negative() {
    let f = lint_source(
        "crates/gpf-core/src/pipeline.rs",
        include_str!("../fixtures/swallowed_error_ok.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
    // The rule is scoped to the engine/core crates: the same discards are
    // legal (if still ugly) elsewhere in the workspace.
    let outside = lint_source(
        "crates/gpf-bench/src/workload.rs",
        include_str!("../fixtures/swallowed_error_bad.rs"),
    );
    assert!(outside.is_empty(), "{outside:?}");
}

#[test]
fn counter_name_registry_positive() {
    let f = lint_source(
        "crates/x/src/lib.rs",
        include_str!("../fixtures/counter_name_bad.rs"),
    );
    assert_eq!(rules_hit(&f), vec![Rule::CounterNameRegistry]);
    // One finding per typo'd registration: counter, histogram.
    assert_eq!(f.len(), 2, "{f:?}");
    let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![4, 5]);
    assert!(f[0].message.contains("task.retires"), "{f:?}");
    assert!(f[1].message.contains("shuffle.bucket.byte"), "{f:?}");
}

#[test]
fn counter_name_registry_negative() {
    let f = lint_source(
        "crates/x/src/lib.rs",
        include_str!("../fixtures/counter_name_ok.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn hermetic_deps_positive() {
    let f = lint_manifest(
        "crates/x/Cargo.toml",
        include_str!("../fixtures/manifest_bad.toml"),
    );
    assert_eq!(rules_hit(&f), vec![Rule::HermeticDeps]);
    // serde, rand, proptest, and the [dependencies.tokio] subtable.
    assert_eq!(f.len(), 4, "{f:?}");
    let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![8, 9, 13, 15]);
    assert!(f.iter().any(|x| x.message.contains("tokio")), "{f:?}");
}

#[test]
fn hermetic_deps_negative() {
    let f = lint_manifest(
        "crates/x/Cargo.toml",
        include_str!("../fixtures/manifest_ok.toml"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn findings_render_file_line_rule() {
    let f = lint_source(
        "crates/x/src/lib.rs",
        include_str!("../fixtures/safety_bad.rs"),
    );
    let text = f[0].to_string();
    assert!(text.starts_with("crates/x/src/lib.rs:3: [safety-comment]"), "{text}");
    let json = f[0].to_json();
    assert!(json.contains("\"rule\":\"safety-comment\""), "{json}");
    assert!(json.contains("\"line\":3"), "{json}");
}

#[test]
fn spill_read_checksum_positive() {
    let f = lint_source(
        "crates/gpf-engine/src/budget.rs",
        include_str!("../fixtures/spill_checksum_bad.rs"),
    );
    assert_eq!(rules_hit(&f), vec![Rule::SpillReadChecksum]);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].line, 3);
    assert!(f[0].message.contains("fnv64"), "{f:?}");
}

#[test]
fn spill_read_checksum_negative() {
    // A verified read and an annotated test helper both pass clean.
    let f = lint_source(
        "crates/gpf-engine/src/budget.rs",
        include_str!("../fixtures/spill_checksum_ok.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}
