//! The linter against reality: the actual workspace must pass clean, and
//! the binary's exit code must gate correctly on a violating tree.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Every crate in the repo satisfies every invariant — the acceptance
/// criterion that makes the CI gate meaningful.
#[test]
fn real_tree_is_clean() {
    let findings = gpf_lint::lint_tree(&workspace_root()).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "workspace violates its own invariants:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}

/// The binary exits 0 on the real tree and 1 on a tree violating every
/// rule; `--json` emits machine-readable findings.
#[test]
fn binary_exit_codes_gate_ci() {
    let bin = env!("CARGO_BIN_EXE_gpf-lint");
    let clean = Command::new(bin)
        .args(["--root", &workspace_root().display().to_string()])
        .output()
        .expect("run gpf-lint");
    assert!(
        clean.status.success(),
        "clean tree must exit 0:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    // Build a violating mini-workspace in a scratch dir.
    let scratch = std::env::temp_dir().join(format!("gpf-lint-it-{}", std::process::id()));
    let src_dir = scratch.join("crates/badcrate/src");
    std::fs::create_dir_all(&src_dir).expect("scratch dirs");
    std::fs::write(
        scratch.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write root manifest");
    std::fs::write(
        scratch.join("crates/badcrate/Cargo.toml"),
        include_str!("../fixtures/manifest_bad.toml"),
    )
    .expect("write crate manifest");
    let mut bad_source = String::new();
    bad_source.push_str(include_str!("../fixtures/no_panic_bad.rs"));
    bad_source.push_str(include_str!("../fixtures/safety_bad.rs"));
    bad_source.push_str(include_str!("../fixtures/relaxed_bad.rs"));
    bad_source.push_str(include_str!("../fixtures/spawn_bad.rs"));
    bad_source.push_str(include_str!("../fixtures/concurrency_boundary_bad.rs"));
    bad_source.push_str(include_str!("../fixtures/no_raw_print_bad.rs"));
    bad_source.push_str(include_str!("../fixtures/counter_name_bad.rs"));
    std::fs::write(src_dir.join("lib.rs"), bad_source).expect("write bad source");
    // `swallowed-error` is scoped to the engine/core crates, so its fixture
    // must live under a matching path to register in the sweep.
    let engine_src = scratch.join("crates/gpf-engine/src");
    std::fs::create_dir_all(&engine_src).expect("scratch engine dir");
    // `swallowed-error` and `spill-read-checksum` both live in engine code.
    let mut engine_bad = String::new();
    engine_bad.push_str(include_str!("../fixtures/swallowed_error_bad.rs"));
    engine_bad.push_str(include_str!("../fixtures/spill_checksum_bad.rs"));
    std::fs::write(engine_src.join("lib.rs"), engine_bad).expect("write engine bad source");

    let dirty = Command::new(bin)
        .args(["--root", &scratch.display().to_string(), "--json"])
        .output()
        .expect("run gpf-lint on scratch");
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    std::fs::remove_dir_all(&scratch).ok();

    assert_eq!(dirty.status.code(), Some(1), "violations must exit 1: {stdout}");
    for rule in gpf_lint::Rule::all() {
        assert!(
            stdout.contains(&format!("\"rule\":\"{}\"", rule.name())),
            "rule {} missing from JSON output: {stdout}",
            rule.name()
        );
    }
    // JSON output parses as a non-empty array of objects.
    assert!(stdout.trim().starts_with('[') && stdout.trim().ends_with(']'), "{stdout}");
}
