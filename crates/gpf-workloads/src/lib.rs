//! # gpf-workloads
//!
//! Synthetic genomic workload generators — this reproduction's substitute
//! for the paper's datasets (NA12878 Platinum Genomes reads, the hg19
//! reference, and dbsnp_138), which are multi-hundred-GB downloads that a
//! laptop-scale reproduction cannot (and need not) carry.
//!
//! The generators preserve the *statistical structure* the paper's
//! evaluation depends on:
//!
//! * [`refgen`] — reference genomes with realistic GC drift and tandem /
//!   interspersed repeats (repeats are what make alignment ambiguous and
//!   CPU-hungry);
//! * [`variants`] — a diploid donor genome with planted SNVs and indels
//!   (ground truth for caller validation), plus a known-sites VCF with
//!   partial overlap (the dbSNP analogue BQSR and realignment consume);
//! * [`quality`] — per-cycle quality-score models for two instrument
//!   profiles mirroring the paper's SRR622461 / SRR504516 samples: raw
//!   scores are dispersed, adjacent deltas concentrate near zero
//!   (Figure 5), which is exactly the property GPF's quality codec exploits;
//! * [`readsim`] — a wgsim-like paired-end read simulator with per-base
//!   errors driven by quality, occasional `N`s, PCR/optical duplicates, and
//!   **coverage hotspots** (the paper notes 10 000×-deep pileups inside a
//!   50× dataset in §4.4 — the load imbalance its dynamic repartitioner
//!   exists to fix);
//! * [`profiles`] — bundled workload presets (WGS / WES / GenePanel scale
//!   models used by the Figure 12 per-workload analysis).
//!
//! Everything is deterministic given a seed.

pub mod profiles;
pub mod quality;
pub mod readsim;
pub mod refgen;
pub mod variants;

pub use profiles::WorkloadProfile;
pub use quality::QualityProfile;
pub use readsim::{ReadSimulator, SimulatedPair, SimulatorConfig};
pub use refgen::ReferenceSpec;
pub use variants::{DonorGenome, PlantedVariant, VariantSpec};
