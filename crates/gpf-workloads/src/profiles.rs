//! Bundled workload presets.
//!
//! The paper's §5.3.1 analyses three workload classes — WGS (whole genome),
//! WES (exome), GenePanel — which differ in genome footprint and coverage
//! depth. These presets are laptop-scale models keeping those ratios.

use crate::quality::QualityProfile;
use crate::readsim::SimulatorConfig;
use crate::refgen::ReferenceSpec;
use crate::variants::VariantSpec;

/// A complete workload description: reference + variants + read simulation.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Workload name ("WGS", "WES", "GenePanel", ...).
    pub name: &'static str,
    /// Reference genome spec.
    pub reference: ReferenceSpec,
    /// Variant planting spec.
    pub variants: VariantSpec,
    /// Read-simulator config.
    pub reads: SimulatorConfig,
}

impl WorkloadProfile {
    /// Whole-genome sequencing: the full (scaled) genome at moderate
    /// coverage. `scale` multiplies the genome size (1.0 ≈ 1.5 Mb here).
    pub fn wgs(scale: f64, seed: u64) -> Self {
        let unit = 500_000.0 * scale;
        Self {
            name: "WGS",
            reference: ReferenceSpec {
                contig_lengths: vec![
                    (1.2 * unit) as u64,
                    (1.0 * unit) as u64,
                    (0.8 * unit) as u64,
                ],
                seed,
                ..Default::default()
            },
            variants: VariantSpec { seed: seed ^ 0x5a5a, ..Default::default() },
            reads: SimulatorConfig {
                coverage: 30.0,
                seed: seed ^ 0xc3c3,
                quality: QualityProfile::srr622461_like(),
                ..Default::default()
            },
        }
    }

    /// Whole-exome: ~2 % of the genome at high coverage.
    pub fn wes(scale: f64, seed: u64) -> Self {
        let mut p = Self::wgs(scale * 0.1, seed);
        p.name = "WES";
        p.reads.coverage = 100.0;
        p.reads.hotspot_count = 4;
        p
    }

    /// Gene panel: a small targeted region at very deep coverage.
    pub fn gene_panel(scale: f64, seed: u64) -> Self {
        let mut p = Self::wgs(scale * 0.02, seed);
        p.name = "GenePanel";
        p.reads.coverage = 500.0;
        p.reads.hotspot_count = 6;
        p.reads.hotspot_multiplier = 20.0;
        p
    }

    /// A tiny profile for fast unit/integration tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            name: "tiny",
            reference: ReferenceSpec { contig_lengths: vec![60_000, 30_000], seed, ..Default::default() },
            variants: VariantSpec { seed: seed ^ 1, ..Default::default() },
            reads: SimulatorConfig { coverage: 8.0, seed: seed ^ 2, ..Default::default() },
        }
    }

    /// Total reference bases in this profile.
    pub fn genome_bases(&self) -> u64 {
        self.reference.contig_lengths.iter().sum()
    }

    /// Approximate sequenced bases (genome × coverage).
    pub fn sequenced_bases(&self) -> u64 {
        (self.genome_bases() as f64 * self.reads.coverage) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_scale_sensibly() {
        let wgs = WorkloadProfile::wgs(1.0, 1);
        let wes = WorkloadProfile::wes(1.0, 1);
        let panel = WorkloadProfile::gene_panel(1.0, 1);
        assert!(wgs.genome_bases() > wes.genome_bases());
        assert!(wes.genome_bases() > panel.genome_bases());
        assert!(panel.reads.coverage > wes.reads.coverage);
        assert!(wes.reads.coverage > wgs.reads.coverage);
        // Sequenced volume: WGS still biggest despite lower coverage.
        assert!(wgs.sequenced_bases() > panel.sequenced_bases());
    }

    #[test]
    fn tiny_profile_generates_end_to_end() {
        let p = WorkloadProfile::tiny(3);
        let r = p.reference.generate();
        let donor = crate::variants::DonorGenome::generate(&r, &p.variants);
        let pairs =
            crate::readsim::ReadSimulator::new(&r, &donor, p.reads.clone()).simulate();
        assert!(!pairs.is_empty());
        assert_eq!(r.dict().len(), 2);
    }
}
