//! Synthetic reference genome generation.
//!
//! Real genomes are not uniform random strings: GC content drifts in
//! isochores, and a large fraction of the sequence is repetitive. Both
//! properties matter here — GC drift shapes the aligner's seed statistics,
//! and repeats create multi-mapping reads (the expensive case for
//! seed-and-extend alignment). The generator plants tandem and interspersed
//! repeats at configurable density.

use gpf_formats::ReferenceGenome;
use gpf_support::rng::StdRng;
use gpf_support::rng::{Rng, SeedableRng};

/// Specification for a synthetic reference genome.
#[derive(Debug, Clone)]
pub struct ReferenceSpec {
    /// Contig lengths in bases (one contig per entry, named `chr1`, `chr2`, ...).
    pub contig_lengths: Vec<u64>,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of the genome covered by repeat copies (~0.15 default).
    pub repeat_fraction: f64,
    /// Length range of a repeat unit.
    pub repeat_len: (usize, usize),
    /// GC drift period in bases (isochore scale).
    pub gc_period: f64,
}

impl Default for ReferenceSpec {
    fn default() -> Self {
        Self {
            contig_lengths: vec![1_000_000],
            seed: 42,
            repeat_fraction: 0.15,
            repeat_len: (150, 600),
            gc_period: 50_000.0,
        }
    }
}

impl ReferenceSpec {
    /// A small multi-contig genome for tests and examples.
    pub fn small(seed: u64) -> Self {
        Self { contig_lengths: vec![200_000, 120_000, 60_000], seed, ..Self::default() }
    }

    /// Generate the reference genome.
    pub fn generate(&self) -> ReferenceGenome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let contigs: Vec<(String, Vec<u8>)> = self
            .contig_lengths
            .iter()
            .enumerate()
            .map(|(i, &len)| (format!("chr{}", i + 1), self.generate_contig(len as usize, &mut rng)))
            .collect();
        ReferenceGenome::from_contigs(contigs)
    }

    fn generate_contig(&self, len: usize, rng: &mut StdRng) -> Vec<u8> {
        let mut seq = Vec::with_capacity(len);
        while seq.len() < len {
            let pos = seq.len();
            // Decide whether to emit a repeat copy.
            let in_repeat = !seq.is_empty()
                && seq.len() > self.repeat_len.1 * 2
                && rng.gen_bool(
                    self.repeat_fraction / ((self.repeat_len.0 + self.repeat_len.1) as f64 / 2.0),
                );
            if in_repeat {
                let rlen = rng.gen_range(self.repeat_len.0..=self.repeat_len.1).min(len - pos);
                let src = rng.gen_range(0..seq.len().saturating_sub(rlen).max(1));
                let copy: Vec<u8> = seq[src..(src + rlen).min(seq.len())].to_vec();
                // Diverge the copy slightly (ancient repeats accumulate mutations).
                for b in copy {
                    if rng.gen_bool(0.02) {
                        seq.push(random_base(rng, 0.5));
                    } else {
                        seq.push(b);
                    }
                    if seq.len() == len {
                        break;
                    }
                }
            } else {
                // GC content oscillates along the contig (isochores).
                let gc = 0.42 + 0.12 * (pos as f64 * std::f64::consts::TAU / self.gc_period).sin();
                seq.push(random_base(rng, gc));
            }
        }
        seq.truncate(len);
        seq
    }
}

/// Draw a base with the given GC probability.
fn random_base(rng: &mut StdRng, gc: f64) -> u8 {
    if rng.gen_bool(gc) {
        if rng.gen_bool(0.5) {
            b'G'
        } else {
            b'C'
        }
    } else if rng.gen_bool(0.5) {
        b'A'
    } else {
        b'T'
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_lengths_and_names() {
        let spec = ReferenceSpec { contig_lengths: vec![10_000, 5_000], ..Default::default() };
        let r = spec.generate();
        assert_eq!(r.dict().len(), 2);
        assert_eq!(r.dict().length_of(0), 10_000);
        assert_eq!(r.dict().length_of(1), 5_000);
        assert_eq!(r.dict().name_of(0), "chr1");
        assert_eq!(r.contig_seq(0).len(), 10_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ReferenceSpec { seed: 7, contig_lengths: vec![20_000], ..Default::default() }.generate();
        let b = ReferenceSpec { seed: 7, contig_lengths: vec![20_000], ..Default::default() }.generate();
        let c = ReferenceSpec { seed: 8, contig_lengths: vec![20_000], ..Default::default() }.generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn only_canonical_bases() {
        let r = ReferenceSpec::small(3).generate();
        for id in 0..r.dict().len() as u32 {
            assert!(r.contig_seq(id).iter().all(|b| b"ACGT".contains(b)));
        }
    }

    #[test]
    fn gc_content_is_plausible() {
        let r = ReferenceSpec { contig_lengths: vec![200_000], ..Default::default() }.generate();
        let gc = r.contig_seq(0).iter().filter(|&&b| b == b'G' || b == b'C').count() as f64
            / 200_000.0;
        assert!((0.3..0.55).contains(&gc), "gc = {gc}");
    }

    #[test]
    fn contains_repeats() {
        // A genome with repeats has some 40-mer appearing more than once.
        let r = ReferenceSpec { contig_lengths: vec![150_000], ..Default::default() }.generate();
        let seq = r.contig_seq(0);
        let mut seen = std::collections::HashMap::new();
        let mut dup = 0usize;
        for w in seq.windows(40).step_by(7) {
            *seen.entry(w.to_vec()).or_insert(0usize) += 1;
        }
        for (_, c) in seen {
            if c > 1 {
                dup += 1;
            }
        }
        assert!(dup > 10, "expected repeated 40-mers, found {dup}");
    }
}
