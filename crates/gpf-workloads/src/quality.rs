//! Per-cycle quality-score models.
//!
//! Figure 5 of the paper compares two Illumina samples (SRR622461 and
//! SRR504516): the raw quality-score distributions differ and are dispersed,
//! while the *adjacent-delta* distributions of both concentrate tightly
//! around zero — the property the quality codec exploits. The two presets
//! here are shaped to reproduce those histograms.

use gpf_formats::quality::{phred_to_char, MAX_PHRED};
use gpf_support::rng::StdRng;
use gpf_support::rng::Rng;
use gpf_support::rng::{Distribution, Normal};

/// A sequencing-instrument quality profile.
#[derive(Debug, Clone)]
pub struct QualityProfile {
    /// Profile name (for reports).
    pub name: &'static str,
    /// Phred score at cycle 0.
    pub start_q: f64,
    /// Linear decline in mean quality per cycle.
    pub slope_per_cycle: f64,
    /// Standard deviation of the AR(1) innovation per cycle.
    pub jitter_sd: f64,
    /// AR(1) persistence (close to 1 = smooth strings = small deltas).
    pub persistence: f64,
    /// Probability per read of a mid-read quality dip (flow-cell blemish).
    pub dip_prob: f64,
}

impl QualityProfile {
    /// HiSeq-2000-like profile mirroring the paper's SRR622461 sample:
    /// high, flat qualities with small jitter.
    pub fn srr622461_like() -> Self {
        Self {
            name: "SRR622461",
            start_q: 38.0,
            slope_per_cycle: -0.05,
            jitter_sd: 1.2,
            persistence: 0.9,
            dip_prob: 0.03,
        }
    }

    /// An older-chemistry profile mirroring SRR504516: lower mean, wider
    /// spread, faster decline.
    pub fn srr504516_like() -> Self {
        Self {
            name: "SRR504516",
            start_q: 34.0,
            slope_per_cycle: -0.09,
            jitter_sd: 2.2,
            persistence: 0.82,
            dip_prob: 0.06,
        }
    }

    /// Sample a quality string of `len` cycles.
    pub fn sample(&self, len: usize, rng: &mut StdRng) -> Vec<u8> {
        // gpf-lint: allow(no-panic): jitter_sd is a positive model constant
        // set in this module, never user input.
        let innov = Normal::new(0.0, self.jitter_sd).expect("valid sd");
        let mut out = Vec::with_capacity(len);
        let mut dev = 0.0f64; // AR(1) deviation from the cycle mean
        let dip_at = if rng.gen_bool(self.dip_prob) && len > 10 {
            Some(rng.gen_range(5..len - 5))
        } else {
            None
        };
        for cycle in 0..len {
            dev = self.persistence * dev + innov.sample(rng);
            let mut q = self.start_q + self.slope_per_cycle * cycle as f64 + dev;
            if let Some(d) = dip_at {
                // A short V-shaped dip around the blemish.
                let dist = (cycle as i64 - d as i64).unsigned_abs();
                if dist < 4 {
                    q -= (8 - 2 * dist) as f64;
                }
            }
            let q = q.round().clamp(2.0, MAX_PHRED as f64) as u8;
            out.push(phred_to_char(q));
        }
        out
    }

    /// Histogram of raw quality characters over sampled reads — Figure 5(a).
    pub fn quality_histogram(&self, reads: usize, len: usize, rng: &mut StdRng) -> Vec<u64> {
        let mut hist = vec![0u64; 128];
        for _ in 0..reads {
            for c in self.sample(len, rng) {
                hist[c as usize] += 1;
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpf_support::rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn sample_lengths_and_range() {
        let p = QualityProfile::srr622461_like();
        let q = p.sample(150, &mut rng());
        assert_eq!(q.len(), 150);
        assert!(q.iter().all(|&c| (33..=126).contains(&c)));
    }

    #[test]
    fn srr622461_is_higher_quality_than_srr504516() {
        let mut r = rng();
        let a: f64 = QualityProfile::srr622461_like()
            .sample(100, &mut r)
            .iter()
            .map(|&c| c as f64)
            .sum::<f64>()
            / 100.0;
        let b: f64 = QualityProfile::srr504516_like()
            .sample(100, &mut r)
            .iter()
            .map(|&c| c as f64)
            .sum::<f64>()
            / 100.0;
        assert!(a > b, "{a} vs {b}");
    }

    #[test]
    fn deltas_concentrate_near_zero_figure5() {
        // The Figure 5 property: adjacent deltas are far more concentrated
        // than the raw scores.
        for profile in [QualityProfile::srr622461_like(), QualityProfile::srr504516_like()] {
            let mut r = rng();
            let mut delta_small = 0u64;
            let mut delta_total = 0u64;
            let mut raw_hist = vec![0u64; 128];
            for _ in 0..200 {
                let q = profile.sample(100, &mut r);
                for w in q.windows(2) {
                    let d = (w[1] as i32 - w[0] as i32).unsigned_abs();
                    delta_total += 1;
                    if d <= 3 {
                        delta_small += 1;
                    }
                }
                for &c in &q {
                    raw_hist[c as usize] += 1;
                }
            }
            let frac_small = delta_small as f64 / delta_total as f64;
            assert!(frac_small > 0.8, "{}: deltas within ±3: {frac_small}", profile.name);
            // Raw scores are dispersed: mode holds well under 80% of mass.
            let total: u64 = raw_hist.iter().sum();
            let mode = raw_hist.iter().max().copied().unwrap_or(0);
            assert!(
                (mode as f64) < 0.8 * total as f64,
                "{}: raw mode fraction {}",
                profile.name,
                mode as f64 / total as f64
            );
        }
    }

    #[test]
    fn quality_declines_with_cycle() {
        let p = QualityProfile::srr504516_like();
        let mut r = rng();
        let mut early = 0.0;
        let mut late = 0.0;
        for _ in 0..100 {
            let q = p.sample(100, &mut r);
            early += q[..20].iter().map(|&c| c as f64).sum::<f64>() / 20.0;
            late += q[80..].iter().map(|&c| c as f64).sum::<f64>() / 20.0;
        }
        assert!(early > late, "early {early} late {late}");
    }

    #[test]
    fn histogram_sums_to_sample_count() {
        let p = QualityProfile::srr622461_like();
        let h = p.quality_histogram(10, 50, &mut rng());
        assert_eq!(h.iter().sum::<u64>(), 500);
    }
}
