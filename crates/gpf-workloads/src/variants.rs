//! Variant planting: build a diploid donor genome from a reference, with
//! ground truth for caller validation and a known-sites VCF (dbSNP
//! analogue).

use gpf_formats::genome::GenomePosition;
use gpf_formats::vcf::{Genotype, VcfRecord};
use gpf_formats::ReferenceGenome;
use gpf_support::rng::StdRng;
use gpf_support::rng::{Rng, SeedableRng};

/// Specification of the variants to plant.
#[derive(Debug, Clone)]
pub struct VariantSpec {
    /// SNVs per base (human-like ~1e-3).
    pub snv_rate: f64,
    /// Indels per base (~1e-4).
    pub indel_rate: f64,
    /// Maximum indel length.
    pub max_indel_len: usize,
    /// Fraction of variants that are heterozygous.
    pub het_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VariantSpec {
    fn default() -> Self {
        Self { snv_rate: 1e-3, indel_rate: 1e-4, max_indel_len: 8, het_fraction: 0.6, seed: 1 }
    }
}

/// One planted variant (ground truth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedVariant {
    /// Position of the variant (for indels: the anchor base, VCF-style).
    pub pos: GenomePosition,
    /// Reference allele (anchor-base included for indels).
    pub ref_allele: Vec<u8>,
    /// Alternate allele.
    pub alt_allele: Vec<u8>,
    /// Heterozygous (haplotype A only) or homozygous (both haplotypes).
    pub het: bool,
}

impl PlantedVariant {
    /// `true` for single-nucleotide variants.
    pub fn is_snv(&self) -> bool {
        self.ref_allele.len() == 1 && self.alt_allele.len() == 1
    }
}

/// One haplotype's sequence for a contig plus a piecewise map from haplotype
/// coordinates back to reference coordinates.
#[derive(Debug, Clone)]
pub struct Haplotype {
    /// The haplotype sequence.
    pub seq: Vec<u8>,
    /// Breakpoints `(hap_offset, ref_offset)` sorted by `hap_offset`: between
    /// breakpoints the mapping is linear.
    pub coord_map: Vec<(u64, u64)>,
}

impl Haplotype {
    /// Map a haplotype position to the corresponding reference position.
    pub fn to_ref(&self, hap_pos: u64) -> u64 {
        let idx = self.coord_map.partition_point(|&(h, _)| h <= hap_pos) - 1;
        let (h, r) = self.coord_map[idx];
        r + (hap_pos - h)
    }
}

/// A diploid donor genome: two haplotypes per contig plus ground truth.
#[derive(Debug, Clone)]
pub struct DonorGenome {
    /// Haplotype A per contig (carries het + hom variants).
    pub hap_a: Vec<Haplotype>,
    /// Haplotype B per contig (carries hom variants only).
    pub hap_b: Vec<Haplotype>,
    /// All planted variants in coordinate order.
    pub truth: Vec<PlantedVariant>,
}

impl DonorGenome {
    /// Plant variants into `reference` per `spec`.
    pub fn generate(reference: &ReferenceGenome, spec: &VariantSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut truth = Vec::new();
        let mut hap_a = Vec::new();
        let mut hap_b = Vec::new();
        for contig in 0..reference.dict().len() as u32 {
            let seq = reference.contig_seq(contig);
            // Choose variant sites on this contig first, then build both
            // haplotypes with the same site list.
            let mut sites: Vec<PlantedVariant> = Vec::new();
            let mut pos = 1u64; // skip position 0 so indel anchors always exist
            while (pos as usize) < seq.len().saturating_sub(spec.max_indel_len + 1) {
                let p = pos as usize;
                if rng.gen_bool(spec.snv_rate) {
                    let old = seq[p];
                    let new = mutate_base(old, &mut rng);
                    sites.push(PlantedVariant {
                        pos: GenomePosition::new(contig, pos),
                        ref_allele: vec![old],
                        alt_allele: vec![new],
                        het: rng.gen_bool(spec.het_fraction),
                    });
                    pos += 1;
                } else if rng.gen_bool(spec.indel_rate) {
                    let len = rng.gen_range(1..=spec.max_indel_len);
                    let anchor = seq[p];
                    if rng.gen_bool(0.5) {
                        // Deletion of `len` bases after the anchor.
                        let mut ref_allele = vec![anchor];
                        ref_allele.extend_from_slice(&seq[p + 1..p + 1 + len]);
                        sites.push(PlantedVariant {
                            pos: GenomePosition::new(contig, pos),
                            ref_allele,
                            alt_allele: vec![anchor],
                            het: rng.gen_bool(spec.het_fraction),
                        });
                        pos += len as u64 + 1;
                    } else {
                        // Insertion after the anchor.
                        let mut alt_allele = vec![anchor];
                        for _ in 0..len {
                            alt_allele.push(b"ACGT"[rng.gen_range(0..4)]);
                        }
                        sites.push(PlantedVariant {
                            pos: GenomePosition::new(contig, pos),
                            ref_allele: vec![anchor],
                            alt_allele,
                            het: rng.gen_bool(spec.het_fraction),
                        });
                        pos += 2;
                    }
                } else {
                    pos += 1;
                }
            }
            hap_a.push(build_haplotype(seq, sites.iter().collect::<Vec<_>>().as_slice()));
            let hom_only: Vec<&PlantedVariant> = sites.iter().filter(|v| !v.het).collect();
            hap_b.push(build_haplotype(seq, &hom_only));
            truth.extend(sites);
        }
        Self { hap_a, hap_b, truth }
    }

    /// Known-sites VCF (dbSNP analogue): `overlap` fraction of the planted
    /// variants plus `extra` additional sites absent from the donor.
    pub fn known_sites(
        &self,
        reference: &ReferenceGenome,
        overlap: f64,
        extra: usize,
        seed: u64,
    ) -> Vec<VcfRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out: Vec<VcfRecord> = self
            .truth
            .iter()
            .filter(|_| rng.gen_bool(overlap))
            .map(|v| VcfRecord {
                contig: v.pos.contig,
                pos: v.pos.pos,
                ref_allele: v.ref_allele.clone(),
                alt_allele: v.alt_allele.clone(),
                qual: 100.0,
                genotype: if v.het { Genotype::Het } else { Genotype::HomAlt },
                depth: 0,
            })
            .collect();
        for _ in 0..extra {
            let contig = rng.gen_range(0..reference.dict().len() as u32);
            let len = reference.dict().length_of(contig);
            let pos = rng.gen_range(0..len);
            let old = reference.contig_seq(contig)[pos as usize];
            out.push(VcfRecord {
                contig,
                pos,
                ref_allele: vec![old],
                alt_allele: vec![mutate_base(old, &mut rng)],
                qual: 50.0,
                genotype: Genotype::Het,
                depth: 0,
            });
        }
        out.sort_by_key(|v| (v.contig, v.pos));
        out.dedup_by_key(|v| (v.contig, v.pos));
        out
    }
}

/// Substitute a base with a different one.
fn mutate_base(old: u8, rng: &mut StdRng) -> u8 {
    loop {
        let b = b"ACGT"[rng.gen_range(0..4)];
        if b != old {
            return b;
        }
    }
}

/// Apply `sites` (sorted by position) to `seq`, producing a haplotype with a
/// coordinate map.
fn build_haplotype(seq: &[u8], sites: &[&PlantedVariant]) -> Haplotype {
    let mut out = Vec::with_capacity(seq.len() + 64);
    let mut coord_map = vec![(0u64, 0u64)];
    let mut ref_pos = 0usize;
    for v in sites {
        let p = v.pos.pos as usize;
        debug_assert!(p >= ref_pos, "sites must be sorted and non-overlapping");
        out.extend_from_slice(&seq[ref_pos..p]);
        if v.is_snv() {
            out.push(v.alt_allele[0]);
            ref_pos = p + 1;
        } else if v.ref_allele.len() > v.alt_allele.len() {
            // Deletion: emit the anchor, skip the deleted bases.
            out.push(v.alt_allele[0]);
            ref_pos = p + v.ref_allele.len();
            coord_map.push((out.len() as u64, ref_pos as u64));
        } else {
            // Insertion: emit the anchor plus inserted bases.
            out.extend_from_slice(&v.alt_allele);
            ref_pos = p + 1;
            coord_map.push((out.len() as u64, ref_pos as u64));
        }
    }
    out.extend_from_slice(&seq[ref_pos..]);
    Haplotype { seq: out, coord_map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refgen::ReferenceSpec;

    fn small_ref() -> ReferenceGenome {
        ReferenceSpec { contig_lengths: vec![50_000], seed: 5, ..Default::default() }.generate()
    }

    #[test]
    fn plants_variants_at_expected_rate() {
        let r = small_ref();
        let donor = DonorGenome::generate(&r, &VariantSpec::default());
        let n = donor.truth.len();
        // ~1.1e-3 * 50k ≈ 55 expected.
        assert!((25..110).contains(&n), "planted {n}");
        assert!(donor.truth.iter().any(|v| v.is_snv()));
        assert!(donor.truth.iter().any(|v| !v.is_snv()), "expect at least one indel");
    }

    #[test]
    fn hom_variants_hit_both_haplotypes() {
        let r = small_ref();
        let donor = DonorGenome::generate(&r, &VariantSpec::default());
        for v in donor.truth.iter().filter(|v| v.is_snv()) {
            let p = v.pos.pos;
            // Find the haplotype position for a SNV: same ref coordinate via map.
            let hap_a = &donor.hap_a[0];
            // Scan the coord map to convert ref->hap approximately: SNVs don't
            // shift coordinates, so only indel breakpoints matter.
            let hap_pos_a = hap_pos_for_ref(hap_a, p);
            assert_eq!(hap_a.seq[hap_pos_a as usize], v.alt_allele[0], "hap A carries alt");
            let hap_b = &donor.hap_b[0];
            let hap_pos_b = hap_pos_for_ref(hap_b, p);
            if v.het {
                assert_eq!(hap_b.seq[hap_pos_b as usize], v.ref_allele[0], "het: hap B is ref");
            } else {
                assert_eq!(hap_b.seq[hap_pos_b as usize], v.alt_allele[0], "hom: hap B alt too");
            }
        }
    }

    /// Invert the hap→ref map for test purposes (works because segments are
    /// linear between breakpoints).
    fn hap_pos_for_ref(h: &Haplotype, ref_pos: u64) -> u64 {
        let idx = h.coord_map.partition_point(|&(_, r)| r <= ref_pos) - 1;
        let (hs, rs) = h.coord_map[idx];
        hs + (ref_pos - rs)
    }

    #[test]
    fn coord_map_round_trips() {
        let r = small_ref();
        let donor = DonorGenome::generate(&r, &VariantSpec::default());
        let hap = &donor.hap_a[0];
        for hap_pos in (0..hap.seq.len() as u64).step_by(997) {
            let rp = hap.to_ref(hap_pos);
            assert!(rp < r.dict().length_of(0) + 100);
        }
        // Start maps to start.
        assert_eq!(hap.to_ref(0), 0);
    }

    #[test]
    fn non_variant_regions_match_reference() {
        let r = small_ref();
        let donor = DonorGenome::generate(&r, &VariantSpec::default());
        let hap = &donor.hap_a[0];
        let refseq = r.contig_seq(0);
        let mut matches = 0usize;
        let mut total = 0usize;
        for hap_pos in (0..hap.seq.len() as u64).step_by(101) {
            let rp = hap.to_ref(hap_pos) as usize;
            if rp < refseq.len() {
                total += 1;
                if refseq[rp] == hap.seq[hap_pos as usize] {
                    matches += 1;
                }
            }
        }
        // Nearly everything matches (variant rate is ~0.1%).
        assert!(matches as f64 / total as f64 > 0.97, "{matches}/{total}");
    }

    #[test]
    fn known_sites_overlap_and_extras() {
        let r = small_ref();
        let donor = DonorGenome::generate(&r, &VariantSpec::default());
        let known = donor.known_sites(&r, 0.8, 20, 9);
        assert!(!known.is_empty());
        let truth_pos: std::collections::HashSet<(u32, u64)> =
            donor.truth.iter().map(|v| (v.pos.contig, v.pos.pos)).collect();
        let overlapping = known.iter().filter(|k| truth_pos.contains(&(k.contig, k.pos))).count();
        assert!(overlapping > 0, "some known sites overlap truth");
        assert!(overlapping < known.len(), "some known sites are novel");
        // Sorted and unique.
        for w in known.windows(2) {
            assert!((w[0].contig, w[0].pos) < (w[1].contig, w[1].pos));
        }
    }

    #[test]
    fn deterministic() {
        let r = small_ref();
        let a = DonorGenome::generate(&r, &VariantSpec::default());
        let b = DonorGenome::generate(&r, &VariantSpec::default());
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.hap_a[0].seq, b.hap_a[0].seq);
    }
}
