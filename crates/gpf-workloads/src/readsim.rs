//! Paired-end read simulation (wgsim-like) with ground truth.
//!
//! Reads are drawn from the diploid donor genome with per-base errors driven
//! by the quality profile, occasional `N` calls, PCR duplicates, and
//! configurable **coverage hotspots** — §4.4 of the paper observes pileups
//! beyond 10 000× inside a 50× dataset, which is precisely the skew that
//! breaks static equal-length partitioning and motivates GPF's dynamic
//! repartitioner. Hotspots give this reproduction the same skew at laptop
//! scale.

use crate::quality::QualityProfile;
use crate::variants::{DonorGenome, Haplotype};
use gpf_formats::base::reverse_complement;
use gpf_formats::fastq::{FastqPair, FastqRecord};
use gpf_formats::quality::{char_to_phred, phred_to_error_prob};
use gpf_formats::ReferenceGenome;
use gpf_support::rng::StdRng;
use gpf_support::rng::{Rng, SeedableRng};
use gpf_support::rng::{Distribution, Normal};

/// Read-simulator configuration.
#[derive(Debug, Clone)]
pub struct SimulatorConfig {
    /// Read length (cycles per mate).
    pub read_len: usize,
    /// Mean insert (fragment) length.
    pub fragment_mean: f64,
    /// Insert-length standard deviation.
    pub fragment_sd: f64,
    /// Target mean coverage (fold).
    pub coverage: f64,
    /// Fraction of output pairs that are PCR duplicates of another pair.
    pub duplicate_rate: f64,
    /// Per-base probability of an `N` call.
    pub n_rate: f64,
    /// Number of coverage hotspots per contig.
    pub hotspot_count: usize,
    /// Coverage multiplier inside a hotspot.
    pub hotspot_multiplier: f64,
    /// Hotspot length in bases.
    pub hotspot_len: u64,
    /// Quality model.
    pub quality: QualityProfile,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        Self {
            read_len: 100,
            fragment_mean: 380.0,
            fragment_sd: 50.0,
            coverage: 30.0,
            duplicate_rate: 0.12,
            n_rate: 0.002,
            hotspot_count: 2,
            hotspot_multiplier: 40.0,
            hotspot_len: 3_000,
            quality: QualityProfile::srr622461_like(),
            seed: 7,
        }
    }
}

/// Ground truth for one simulated pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairTruth {
    /// Contig the fragment came from.
    pub contig: u32,
    /// Reference coordinate of mate 1's leftmost base.
    pub ref_start1: u64,
    /// Reference coordinate of mate 2's leftmost base.
    pub ref_start2: u64,
    /// Fragment drawn from haplotype A (vs B).
    pub from_hap_a: bool,
    /// Index (into the simulator output) of the pair this one duplicates.
    pub duplicate_of: Option<usize>,
}

/// One simulated pair with truth.
#[derive(Debug, Clone)]
pub struct SimulatedPair {
    /// The FASTQ pair.
    pub pair: FastqPair,
    /// Ground truth.
    pub truth: PairTruth,
}

/// The simulator: reference + donor + config.
pub struct ReadSimulator<'a> {
    reference: &'a ReferenceGenome,
    donor: &'a DonorGenome,
    cfg: SimulatorConfig,
}

/// A weighted sampling region on a haplotype.
struct Hotspot {
    start: u64,
    len: u64,
}

impl<'a> ReadSimulator<'a> {
    /// Create a simulator.
    pub fn new(reference: &'a ReferenceGenome, donor: &'a DonorGenome, cfg: SimulatorConfig) -> Self {
        assert!(cfg.read_len >= 20, "reads shorter than 20bp are unsupported");
        Self { reference, donor, cfg }
    }

    /// Number of unique pairs needed for the configured coverage.
    pub fn unique_pairs(&self) -> usize {
        let genome = self.reference.genome_length() as f64;
        ((genome * self.cfg.coverage) / (2.0 * self.cfg.read_len as f64)).ceil() as usize
    }

    /// Run the simulation.
    pub fn simulate(&self) -> Vec<SimulatedPair> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let n_unique = self.unique_pairs();
        // gpf-lint: allow(no-panic): fragment_mean/sd are positive model
        // constants from SimConfig defaults, never user input.
        let frag_dist = Normal::new(self.cfg.fragment_mean, self.cfg.fragment_sd).expect("valid");

        // Hotspots per contig (same windows on both haplotypes).
        let hotspots: Vec<Vec<Hotspot>> = (0..self.reference.dict().len() as u32)
            .map(|c| {
                let len = self.reference.dict().length_of(c);
                (0..self.cfg.hotspot_count)
                    .filter(|_| len > 4 * self.cfg.hotspot_len)
                    .map(|_| Hotspot {
                        start: rng.gen_range(0..len - self.cfg.hotspot_len),
                        len: self.cfg.hotspot_len,
                    })
                    .collect()
            })
            .collect();

        // Contig selection weights: length + hotspot extra mass.
        let extra_per_spot = self.cfg.hotspot_len as f64 * (self.cfg.hotspot_multiplier - 1.0);
        let weights: Vec<f64> = (0..self.reference.dict().len() as u32)
            .map(|c| {
                self.reference.dict().length_of(c) as f64
                    + hotspots[c as usize].len() as f64 * extra_per_spot
            })
            .collect();
        let total_weight: f64 = weights.iter().sum();

        let mut out = Vec::with_capacity(n_unique);
        for i in 0..n_unique {
            // Pick contig by weight.
            let mut u = rng.gen_range(0.0..total_weight);
            let mut contig = 0u32;
            for (c, w) in weights.iter().enumerate() {
                if u < *w {
                    contig = c as u32;
                    break;
                }
                u -= w;
            }
            let from_hap_a = rng.gen_bool(0.5);
            let hap = if from_hap_a {
                &self.donor.hap_a[contig as usize]
            } else {
                &self.donor.hap_b[contig as usize]
            };
            let frag_len = (frag_dist.sample(&mut rng).round() as usize)
                .max(2 * self.cfg.read_len + 4)
                .min(hap.seq.len().saturating_sub(2));
            let start = self.sample_start(&mut rng, hap, &hotspots[contig as usize], frag_len);
            out.push(self.make_pair(i, contig, hap, from_hap_a, start, frag_len, None, &mut rng));
        }

        // PCR duplicates: same fragment, fresh sequencing errors.
        let n_dups = (n_unique as f64 * self.cfg.duplicate_rate / (1.0 - self.cfg.duplicate_rate))
            .round() as usize;
        for d in 0..n_dups {
            let orig_idx = rng.gen_range(0..n_unique);
            let orig = out[orig_idx].truth.clone();
            let hap = if orig.from_hap_a {
                &self.donor.hap_a[orig.contig as usize]
            } else {
                &self.donor.hap_b[orig.contig as usize]
            };
            // Recover the haplotype start from the original's generation —
            // re-derive by storing it in the name is fragile; instead re-find
            // via stored hap_start in truth? We keep it simple: duplicates
            // re-sequence the same haplotype window recorded at generation.
            let (hap_start, frag_len) = self.dup_window(&out[orig_idx]);
            out.push(self.make_pair(
                n_unique + d,
                orig.contig,
                hap,
                orig.from_hap_a,
                hap_start,
                frag_len,
                Some(orig_idx),
                &mut rng,
            ));
        }
        out
    }

    /// Recover the haplotype window of a generated pair (stored in the name:
    /// `sim{i}:{hap_start}:{frag_len}`).
    fn dup_window(&self, p: &SimulatedPair) -> (u64, usize) {
        let name = p.pair.fragment_name();
        let mut parts = name.split(':');
        let _ = parts.next();
        let hap_start: Option<u64> = parts.next().and_then(|s| s.parse().ok());
        let frag_len: Option<usize> = parts.next().and_then(|s| s.parse().ok());
        // gpf-lint: allow(no-panic): the name was formatted by generate_pair
        // in this file as `sim{i}:{start}:{len}`; failing to parse our own
        // encoding is a simulator bug worth crashing on.
        hap_start.zip(frag_len).expect("simulator-encoded fragment name")
    }

    /// Sample a fragment start honouring hotspot weights.
    fn sample_start(
        &self,
        rng: &mut StdRng,
        hap: &Haplotype,
        hotspots: &[Hotspot],
        frag_len: usize,
    ) -> u64 {
        let max_start = (hap.seq.len() - frag_len) as u64;
        let extra: f64 = hotspots.len() as f64
            * self.cfg.hotspot_len as f64
            * (self.cfg.hotspot_multiplier - 1.0);
        let total = max_start as f64 + extra;
        let u = rng.gen_range(0.0..total);
        if u < max_start as f64 {
            u as u64
        } else {
            // Inside a hotspot's extra mass.
            let mut v = u - max_start as f64;
            let spot_mass = self.cfg.hotspot_len as f64 * (self.cfg.hotspot_multiplier - 1.0);
            for h in hotspots {
                if v < spot_mass {
                    let off = (v / (self.cfg.hotspot_multiplier - 1.0)) as u64;
                    return (h.start + off.min(h.len - 1)).min(max_start);
                }
                v -= spot_mass;
            }
            max_start / 2
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn make_pair(
        &self,
        idx: usize,
        contig: u32,
        hap: &Haplotype,
        from_hap_a: bool,
        hap_start: u64,
        frag_len: usize,
        duplicate_of: Option<usize>,
        rng: &mut StdRng,
    ) -> SimulatedPair {
        let rl = self.cfg.read_len;
        let s = hap_start as usize;
        let frag = &hap.seq[s..s + frag_len];
        let fwd = &frag[..rl];
        let rev_src = &frag[frag_len - rl..];
        let rev = reverse_complement(rev_src);

        let name = format!("sim{idx}:{hap_start}:{frag_len}");
        let (seq1, qual1) = self.sequence_read(fwd, rng);
        let (seq2, qual2) = self.sequence_read(&rev, rng);
        // gpf-lint: allow(no-panic): sequence_read emits equal-length
        // seq/qual from the ACGTN alphabet, which is all FastqRecord checks.
        let r1 = FastqRecord::new(format!("{name}/1"), &seq1, &qual1).expect("simulated read valid");
        // gpf-lint: allow(no-panic): same sequence_read contract as r1.
        let r2 = FastqRecord::new(format!("{name}/2"), &seq2, &qual2).expect("simulated read valid");
        // gpf-lint: allow(no-panic): both mates were just built from `name`.
        let pair = FastqPair::new(r1, r2).expect("mate names match");
        let truth = PairTruth {
            contig,
            ref_start1: hap.to_ref(hap_start),
            ref_start2: hap.to_ref(hap_start + (frag_len - rl) as u64),
            from_hap_a,
            duplicate_of,
        };
        SimulatedPair { pair, truth }
    }

    /// Apply the sequencing error process to a template.
    fn sequence_read(&self, template: &[u8], rng: &mut StdRng) -> (Vec<u8>, Vec<u8>) {
        let qual = self.cfg.quality.sample(template.len(), rng);
        let mut seq = Vec::with_capacity(template.len());
        for (i, &b) in template.iter().enumerate() {
            if rng.gen_bool(self.cfg.n_rate) {
                seq.push(b'N');
                continue;
            }
            let p_err = phred_to_error_prob(char_to_phred(qual[i]));
            if rng.gen_bool(p_err.clamp(0.0, 0.75)) {
                // Substitute with a different base.
                let mut nb = b"ACGT"[rng.gen_range(0..4)];
                while nb == b {
                    nb = b"ACGT"[rng.gen_range(0..4)];
                }
                seq.push(nb);
            } else {
                seq.push(b);
            }
        }
        (seq, qual)
    }
}

/// Convenience: simulate and strip truth, returning plain FASTQ pairs.
pub fn simulate_fastq_pairs(
    reference: &ReferenceGenome,
    donor: &DonorGenome,
    cfg: SimulatorConfig,
) -> Vec<FastqPair> {
    ReadSimulator::new(reference, donor, cfg).simulate().into_iter().map(|s| s.pair).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refgen::ReferenceSpec;
    use crate::variants::{DonorGenome, VariantSpec};

    fn setup() -> (ReferenceGenome, DonorGenome) {
        let r = ReferenceSpec { contig_lengths: vec![80_000, 40_000], seed: 11, ..Default::default() }
            .generate();
        let d = DonorGenome::generate(&r, &VariantSpec::default());
        (r, d)
    }

    fn cfg(coverage: f64) -> SimulatorConfig {
        SimulatorConfig { coverage, ..Default::default() }
    }

    #[test]
    fn pair_count_matches_coverage() {
        let (r, d) = setup();
        let sim = ReadSimulator::new(&r, &d, cfg(10.0));
        let pairs = sim.simulate();
        let unique = sim.unique_pairs();
        assert_eq!(unique, (120_000.0 * 10.0 / 200.0) as usize);
        assert!(pairs.len() >= unique);
        let dups = pairs.iter().filter(|p| p.truth.duplicate_of.is_some()).count();
        let frac = dups as f64 / pairs.len() as f64;
        assert!((frac - 0.12).abs() < 0.03, "duplicate fraction {frac}");
    }

    #[test]
    fn reads_have_configured_length_and_alphabet() {
        let (r, d) = setup();
        let pairs = ReadSimulator::new(&r, &d, cfg(2.0)).simulate();
        for p in &pairs {
            assert_eq!(p.pair.r1.len(), 100);
            assert_eq!(p.pair.r2.len(), 100);
            assert!(p.pair.r1.seq.iter().all(|b| b"ACGTN".contains(b)));
        }
    }

    #[test]
    fn reads_match_reference_near_truth_position() {
        let (r, d) = setup();
        let pairs = ReadSimulator::new(&r, &d, cfg(2.0)).simulate();
        let mut well_matched = 0usize;
        let mut checked = 0usize;
        for p in pairs.iter().take(200) {
            let t = &p.truth;
            let refseq = r.contig_seq(t.contig);
            let start = t.ref_start1 as usize;
            if start + 100 > refseq.len() {
                continue;
            }
            checked += 1;
            let matches = p
                .pair
                .r1
                .seq
                .iter()
                .zip(&refseq[start..start + 100])
                .filter(|(a, b)| a == b)
                .count();
            // Indel-bearing haplotypes shift later bases, so require 90+
            // matches only for most reads.
            if matches >= 90 {
                well_matched += 1;
            }
        }
        assert!(
            well_matched as f64 / checked as f64 > 0.8,
            "{well_matched}/{checked} reads match their truth locus"
        );
    }

    #[test]
    fn hotspots_create_coverage_skew() {
        let (r, d) = setup();
        let c = SimulatorConfig {
            coverage: 8.0,
            hotspot_count: 1,
            hotspot_multiplier: 50.0,
            hotspot_len: 2_000,
            ..Default::default()
        };
        let pairs = ReadSimulator::new(&r, &d, c).simulate();
        // Bin read starts on chr1 into 2kb windows; the max window should be
        // far above the median (the paper's 10000x-in-50x skew, scaled).
        let mut bins = vec![0u64; 40_000 / 1 + 1];
        let mut nbins = 0usize;
        let binsize = 2_000u64;
        for p in &pairs {
            if p.truth.contig == 0 {
                let b = (p.truth.ref_start1 / binsize) as usize;
                if b < bins.len() {
                    bins[b] += 1;
                    nbins = nbins.max(b + 1);
                }
            }
        }
        let bins = &bins[..nbins];
        let mut sorted: Vec<u64> = bins.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2].max(1);
        let max = *sorted.last().expect("bins nonempty");
        assert!(max > 5 * median, "max window {max} vs median {median}");
    }

    #[test]
    fn duplicates_share_fragment_with_original() {
        let (r, d) = setup();
        let pairs = ReadSimulator::new(&r, &d, cfg(4.0)).simulate();
        for p in &pairs {
            if let Some(orig) = p.truth.duplicate_of {
                let o = &pairs[orig];
                assert_eq!(p.truth.contig, o.truth.contig);
                assert_eq!(p.truth.ref_start1, o.truth.ref_start1);
                assert_eq!(p.truth.ref_start2, o.truth.ref_start2);
                assert_ne!(p.pair.r1.name, o.pair.r1.name, "dup gets its own name");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (r, d) = setup();
        let a = ReadSimulator::new(&r, &d, cfg(2.0)).simulate();
        let b = ReadSimulator::new(&r, &d, cfg(2.0)).simulate();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].pair.r1.seq, b[0].pair.r1.seq);
        assert_eq!(a.last().unwrap().pair.r2.qual, b.last().unwrap().pair.r2.qual);
    }

    #[test]
    fn contains_some_n_bases() {
        let (r, d) = setup();
        let pairs = ReadSimulator::new(&r, &d, cfg(5.0)).simulate();
        let n_count: usize = pairs
            .iter()
            .map(|p| p.pair.r1.seq.iter().filter(|&&b| b == b'N').count())
            .sum();
        assert!(n_count > 0, "N rate should produce some N bases");
    }
}
