//! Determinism guarantees of the workload generators.
//!
//! The whole evaluation pipeline reproduces from seeds: the same
//! `SimulatorConfig` must yield **byte-identical** simulated reads on every
//! run, platform, and thread count. These tests pin that contract — if the
//! PRNG, the sampling order, or any generator's draw count changes, they
//! fail before a silently-shifted benchmark table does.

use gpf_formats::ReferenceGenome;
use gpf_workloads::readsim::{ReadSimulator, SimulatorConfig};
use gpf_workloads::refgen::ReferenceSpec;
use gpf_workloads::variants::{DonorGenome, VariantSpec};

fn reference(seed: u64) -> ReferenceGenome {
    ReferenceSpec { contig_lengths: vec![60_000, 30_000], seed, ..Default::default() }.generate()
}

/// Flatten every simulated pair into one byte stream (names, sequences,
/// qualities, truth coordinates) so equality means *byte-identical*.
fn simulate_bytes(reference: &ReferenceGenome, donor: &DonorGenome, seed: u64) -> Vec<u8> {
    let cfg = SimulatorConfig { coverage: 12.0, seed, ..Default::default() };
    let mut out = Vec::new();
    for pair in ReadSimulator::new(reference, donor, cfg).simulate() {
        for rec in [&pair.pair.r1, &pair.pair.r2] {
            out.extend_from_slice(rec.name.as_bytes());
            out.push(b'\n');
            out.extend_from_slice(&rec.seq);
            out.push(b'\n');
            out.extend_from_slice(&rec.qual);
            out.push(b'\n');
        }
        out.extend_from_slice(&pair.truth.contig.to_le_bytes());
        out.extend_from_slice(&pair.truth.ref_start1.to_le_bytes());
        out.extend_from_slice(&pair.truth.ref_start2.to_le_bytes());
        out.push(pair.truth.from_hap_a as u8);
    }
    out
}

#[test]
fn same_seed_produces_byte_identical_reads() {
    let r = reference(11);
    let d = DonorGenome::generate(&r, &VariantSpec::default());
    let first = simulate_bytes(&r, &d, 7);
    let second = simulate_bytes(&r, &d, 7);
    assert!(!first.is_empty());
    assert_eq!(first, second, "same seed must reproduce the read set byte for byte");
}

#[test]
fn different_seed_produces_different_reads() {
    let r = reference(11);
    let d = DonorGenome::generate(&r, &VariantSpec::default());
    assert_ne!(
        simulate_bytes(&r, &d, 7),
        simulate_bytes(&r, &d, 8),
        "changing the seed must change the read set"
    );
}

#[test]
fn reference_and_donor_reproduce_from_seeds() {
    let a = reference(21);
    let b = reference(21);
    assert_eq!(a.to_fasta_string(), b.to_fasta_string(), "reference reproduces");

    let spec = VariantSpec { seed: 5, ..Default::default() };
    let da = DonorGenome::generate(&a, &spec);
    let db = DonorGenome::generate(&b, &spec);
    assert_eq!(da.truth, db.truth, "planted variant truth set reproduces");
}
