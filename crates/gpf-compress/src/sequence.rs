//! Sequence-field compression (Figure 4 of the paper).
//!
//! The stored base sequence uses the 2-bit encoding `A:00 G:01 C:10 T:11`.
//! Special characters (`N`) cannot be 2-bit coded, so following Deorowicz
//! they are escaped **through the quality field**: the base is rewritten to
//! `A` and its quality byte replaced by the out-of-range marker
//! [`ESCAPE_QUAL`]. At decompression time, an `A` whose quality equals the
//! marker is recognized as an escaped `N`.
//!
//! The paper's scheme discards the `N` base's original quality; this
//! implementation keeps the codec **lossless** by storing the displaced
//! quality bytes in a small side list (`n_quals`), restoring them on
//! decompression. `N` bases are rare (<1 % of bases), so the side list is
//! negligible, and losslessness lets every downstream component assume exact
//! round-trips.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;
use crate::qualcodec::QualityCodec;
use crate::varint;
use gpf_formats::base::{decode2, encode2};

/// Out-of-range quality byte marking an escaped `N` (ASCII SOH, as in the
/// paper's Figure 4 example `CCCB(SOH)FFFF`).
pub const ESCAPE_QUAL: u8 = 1;

/// The compressed form of a read's sequence + quality fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedRead {
    /// Number of bases before compression (the "length of sequence" byte in
    /// Figure 4, widened to a varint).
    pub len: u32,
    /// 2-bit packed bases, zero-padded to a byte boundary.
    pub packed_seq: Vec<u8>,
    /// Huffman-coded delta stream of the (escape-transformed) quality string,
    /// EOF-terminated.
    pub qual_stream: Vec<u8>,
    /// Original quality bytes displaced by the escape marker, in read order.
    pub n_quals: Vec<u8>,
}

impl CompressedRead {
    /// Total compressed payload size in bytes (what the engine charges to
    /// memory/shuffle when this read is stored serialized).
    pub fn payload_bytes(&self) -> usize {
        varint::u64_len(self.len as u64)
            + self.packed_seq.len()
            + varint::u64_len(self.qual_stream.len() as u64)
            + self.qual_stream.len()
            + varint::u64_len(self.n_quals.len() as u64)
            + self.n_quals.len()
    }
}

/// Compress a read's sequence and quality fields together.
///
/// `seq` may contain `A C G T N`; anything else is an error. `qual` must be
/// the same length with characters in `[33, 126]`.
pub fn compress_read_fields(
    seq: &[u8],
    qual: &[u8],
    codec: &QualityCodec,
) -> Result<CompressedRead, CodecError> {
    if seq.len() != qual.len() {
        return Err(CodecError::Corrupt(format!(
            "seq len {} != qual len {}",
            seq.len(),
            qual.len()
        )));
    }
    // Tracing-only base throughput; the enabled() gate keeps the registry
    // mutex off the untraced hot path.
    if gpf_trace::enabled() {
        gpf_trace::counter("codec.bases").add(seq.len() as u64);
    }
    let mut packed = BitWriter::new();
    let mut tqual = Vec::with_capacity(qual.len());
    let mut n_quals = Vec::new();
    for (&b, &q) in seq.iter().zip(qual) {
        match encode2(b) {
            Some(code) => {
                packed.write_bits(code as u32, 2);
                tqual.push(q);
            }
            None if b == b'N' => {
                // Escape: store base as A, mark through the quality field.
                packed.write_bits(0, 2);
                tqual.push(ESCAPE_QUAL);
                n_quals.push(q);
            }
            None => return Err(CodecError::UnencodableBase { base: b }),
        }
    }
    let mut qw = BitWriter::new();
    codec.encode(&tqual, &mut qw)?;
    Ok(CompressedRead {
        len: seq.len() as u32,
        packed_seq: packed.into_bytes(),
        qual_stream: qw.into_bytes(),
        n_quals,
    })
}

/// Decompress back to `(seq, qual)`.
pub fn decompress_read_fields(
    read: &CompressedRead,
    codec: &QualityCodec,
) -> Result<(Vec<u8>, Vec<u8>), CodecError> {
    let mut seq = Vec::with_capacity(read.len as usize);
    let mut br = BitReader::new(&read.packed_seq);
    for _ in 0..read.len {
        let code = br.read_bits(2)? as u8;
        seq.push(decode2(code));
    }
    let mut qr = BitReader::new(&read.qual_stream);
    let mut qual = codec.decode(&mut qr)?;
    if qual.len() != read.len as usize {
        return Err(CodecError::Corrupt(format!(
            "quality stream decoded {} chars, expected {}",
            qual.len(),
            read.len
        )));
    }
    // Restore escaped Ns and their displaced qualities.
    let mut k = 0usize;
    for (b, q) in seq.iter_mut().zip(qual.iter_mut()) {
        if *q == ESCAPE_QUAL {
            if *b != b'A' {
                return Err(CodecError::Corrupt("escape marker on non-A base".into()));
            }
            *b = b'N';
            *q = *read
                .n_quals
                .get(k)
                .ok_or_else(|| CodecError::Corrupt("missing escaped quality".into()))?;
            k += 1;
        }
    }
    if k != read.n_quals.len() {
        return Err(CodecError::Corrupt("unused escaped qualities".into()));
    }
    Ok((seq, qual))
}

/// Compression ratio achieved on the raw two fields (`(seq+qual bytes) /
/// compressed payload bytes`) — Figure 4's "improves storage by
/// approximately four times" claim is about the sequence part of this.
pub fn field_compression_ratio(seq_len: usize, read: &CompressedRead) -> f64 {
    (2 * seq_len) as f64 / read.payload_bytes().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> QualityCodec {
        QualityCodec::default_codec()
    }

    #[test]
    fn figure4_example_round_trips() {
        // Figure 4: sequence GGTTNCCTA, quality CCCB#FFFF.
        let seq = b"GGTTNCCTA";
        let qual = b"CCCB#FFFF";
        let c = compress_read_fields(seq, qual, &codec()).unwrap();
        // 9 bases -> 3 packed bytes; the N was escaped.
        assert_eq!(c.packed_seq.len(), 3);
        assert_eq!(c.n_quals, vec![b'#']);
        // Packed bits match the figure: (00 -> A substituted for N).
        assert_eq!(c.packed_seq[0], 0b0101_1111);
        assert_eq!(c.packed_seq[1], 0b0010_1011);
        assert_eq!(c.packed_seq[2], 0b0000_0000);
        let (s2, q2) = decompress_read_fields(&c, &codec()).unwrap();
        assert_eq!(s2, seq.to_vec());
        assert_eq!(q2, qual.to_vec());
    }

    #[test]
    fn lossless_on_all_n_read() {
        let seq = b"NNNNN";
        let qual = b"#!#!#";
        let c = compress_read_fields(seq, qual, &codec()).unwrap();
        assert_eq!(c.n_quals.len(), 5);
        let (s2, q2) = decompress_read_fields(&c, &codec()).unwrap();
        assert_eq!(s2, seq.to_vec());
        assert_eq!(q2, qual.to_vec());
    }

    #[test]
    fn real_q0_base_is_not_confused_with_escape() {
        // '!' is Phred 0 but a legitimate quality; only the out-of-range
        // marker (1) flags an escape.
        let seq = b"ACGT";
        let qual = b"!!!!";
        let c = compress_read_fields(seq, qual, &codec()).unwrap();
        assert!(c.n_quals.is_empty());
        let (s2, q2) = decompress_read_fields(&c, &codec()).unwrap();
        assert_eq!(s2, seq.to_vec());
        assert_eq!(q2, qual.to_vec());
    }

    #[test]
    fn empty_read() {
        let c = compress_read_fields(b"", b"", &codec()).unwrap();
        assert_eq!(c.len, 0);
        let (s2, q2) = decompress_read_fields(&c, &codec()).unwrap();
        assert!(s2.is_empty());
        assert!(q2.is_empty());
    }

    #[test]
    fn rejects_bad_base_and_length_mismatch() {
        assert!(matches!(
            compress_read_fields(b"ACXT", b"IIII", &codec()),
            Err(CodecError::UnencodableBase { base: b'X' })
        ));
        assert!(compress_read_fields(b"ACGT", b"III", &codec()).is_err());
    }

    #[test]
    fn hundred_base_read_compresses_roughly_4x() {
        // A realistic 100bp read: canonical bases + smooth qualities.
        let seq: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        let mut qual = vec![70u8; 100];
        qual[50] = 68;
        let c = compress_read_fields(&seq, &qual, &codec()).unwrap();
        // Sequence: 100 bases -> 25 bytes (4x). Quality: ~1-2 bits/char.
        assert_eq!(c.packed_seq.len(), 25);
        let ratio = field_compression_ratio(100, &c);
        assert!(ratio > 3.0, "ratio = {ratio}");
    }

    #[test]
    fn corrupt_stream_is_detected() {
        let c = compress_read_fields(b"ACGTN", b"IIII#", &codec()).unwrap();
        // Drop the displaced quality -> decode must error, not panic.
        let mut broken = c.clone();
        broken.n_quals.clear();
        assert!(decompress_read_fields(&broken, &codec()).is_err());
        // Truncate the packed sequence.
        let mut broken2 = c;
        broken2.packed_seq.truncate(1);
        assert!(decompress_read_fields(&broken2, &codec()).is_err());
    }
}
