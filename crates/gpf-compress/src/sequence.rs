//! Sequence-field compression (Figure 4 of the paper).
//!
//! The stored base sequence uses the 2-bit encoding `A:00 G:01 C:10 T:11`.
//! Special characters (`N`) cannot be 2-bit coded, so following Deorowicz
//! they are escaped **through the quality field**: the base is rewritten to
//! `A` and its quality byte replaced by the out-of-range marker
//! [`ESCAPE_QUAL`]. At decompression time, an `A` whose quality equals the
//! marker is recognized as an escaped `N`.
//!
//! The paper's scheme discards the `N` base's original quality; this
//! implementation keeps the codec **lossless** by storing the displaced
//! quality bytes in a small side list (`n_quals`), restoring them on
//! decompression. `N` bases are rare (<1 % of bases), so the side list is
//! negligible, and losslessness lets every downstream component assume exact
//! round-trips.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;
use crate::qualcodec::QualityCodec;
use crate::varint;
use gpf_formats::base::BASES;

/// Out-of-range quality byte marking an escaped `N` (ASCII SOH, as in the
/// paper's Figure 4 example `CCCB(SOH)FFFF`).
pub const ESCAPE_QUAL: u8 = 1;

/// Per-byte encode LUT value for `N` (escaped through the quality field).
const ENC_N: u8 = 0xFE;
/// Per-byte encode LUT value for characters with no 2-bit code.
const ENC_INVALID: u8 = 0xFF;

/// byte → 2-bit code (`A:00 G:01 C:10 T:11`), [`ENC_N`] for `N`,
/// [`ENC_INVALID`] otherwise. One load replaces the per-base match of
/// `gpf_formats::base::encode2` on the packing hot path (the mapping is
/// pinned equal to `encode2` by a unit test below).
static ENC_LUT: [u8; 256] = {
    let mut t = [ENC_INVALID; 256];
    t[b'A' as usize] = 0b00;
    t[b'G' as usize] = 0b01;
    t[b'C' as usize] = 0b10;
    t[b'T' as usize] = 0b11;
    t[b'N' as usize] = ENC_N;
    t
};

/// packed byte → 4 base characters (MSB-first 2-bit groups). Unpacking
/// becomes one load + 4-byte copy per packed byte instead of 4 bit-extract
/// iterations.
static DEC_LUT: [[u8; 4]; 256] = {
    let mut t = [[0u8; 4]; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut i = 0usize;
        while i < 4 {
            t[b][i] = BASES[(b >> (6 - 2 * i)) & 3];
            i += 1;
        }
        b += 1;
    }
    t
};

/// The compressed form of a read's sequence + quality fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedRead {
    /// Number of bases before compression (the "length of sequence" byte in
    /// Figure 4, widened to a varint).
    pub len: u32,
    /// 2-bit packed bases, zero-padded to a byte boundary.
    pub packed_seq: Vec<u8>,
    /// Huffman-coded delta stream of the (escape-transformed) quality string,
    /// EOF-terminated.
    pub qual_stream: Vec<u8>,
    /// Original quality bytes displaced by the escape marker, in read order.
    pub n_quals: Vec<u8>,
}

impl CompressedRead {
    /// Total compressed payload size in bytes (what the engine charges to
    /// memory/shuffle when this read is stored serialized).
    pub fn payload_bytes(&self) -> usize {
        varint::u64_len(self.len as u64)
            + self.packed_seq.len()
            + varint::u64_len(self.qual_stream.len() as u64)
            + self.qual_stream.len()
            + varint::u64_len(self.n_quals.len() as u64)
            + self.n_quals.len()
    }
}

/// Reusable buffers for the per-record codec hot path. One instance per
/// encoding thread (or serializer) amortizes every allocation the codec
/// would otherwise make per record.
#[derive(Debug, Default)]
pub struct ReadCodecScratch {
    packed: Vec<u8>,
    tqual: Vec<u8>,
    n_quals: Vec<u8>,
    qual_writer: BitWriter,
}

/// Borrowed view of one compressed read inside a [`ReadCodecScratch`] —
/// the fields of [`CompressedRead`] without owning them. Valid until the
/// scratch is reused.
#[derive(Debug, Clone, Copy)]
pub struct CompressedParts<'a> {
    /// Number of bases before compression.
    pub len: u32,
    /// 2-bit packed bases, zero-padded to a byte boundary.
    pub packed_seq: &'a [u8],
    /// Huffman-coded delta stream of the quality string, EOF-terminated.
    pub qual_stream: &'a [u8],
    /// Original quality bytes displaced by the `N` escape, in read order.
    pub n_quals: &'a [u8],
}

/// Compress a read's sequence and quality fields together.
///
/// `seq` may contain `A C G T N`; anything else is an error. `qual` must be
/// the same length with characters in `[33, 126]`.
pub fn compress_read_fields(
    seq: &[u8],
    qual: &[u8],
    codec: &QualityCodec,
) -> Result<CompressedRead, CodecError> {
    let mut scratch = ReadCodecScratch::default();
    let len = compress_read_fields_into(seq, qual, codec, &mut scratch)?.len;
    // The scratch is local, so its buffers can be moved out instead of
    // copied; `finish()` already ran, so `into_bytes` is a plain move.
    let ReadCodecScratch { packed, n_quals, qual_writer, .. } = scratch;
    Ok(CompressedRead {
        len,
        packed_seq: packed,
        qual_stream: qual_writer.into_bytes(),
        n_quals,
    })
}

/// [`compress_read_fields`] into caller-owned scratch buffers: zero
/// allocations per record once the scratch has warmed up. The returned
/// [`CompressedParts`] borrows the scratch.
pub fn compress_read_fields_into<'s>(
    seq: &[u8],
    qual: &[u8],
    codec: &QualityCodec,
    scratch: &'s mut ReadCodecScratch,
) -> Result<CompressedParts<'s>, CodecError> {
    if seq.len() != qual.len() {
        return Err(CodecError::Corrupt(format!(
            "seq len {} != qual len {}",
            seq.len(),
            qual.len()
        )));
    }
    // Tracing-only base throughput; the enabled() gate keeps the registry
    // mutex off the untraced hot path.
    if gpf_trace::enabled() {
        gpf_trace::counter(gpf_trace::names::CODEC_BASES).add(seq.len() as u64);
    }
    scratch.packed.clear();
    scratch.packed.reserve(seq.len().div_ceil(4));
    scratch.tqual.clear();
    scratch.tqual.reserve(qual.len());
    scratch.n_quals.clear();
    // LUT pack: 2-bit groups accumulate MSB-first in a register and land in
    // memory once per 4 bases — byte-identical to the bit-writer stream.
    let mut acc = 0u8;
    let mut k = 0u8;
    for (&b, &q) in seq.iter().zip(qual) {
        let code = ENC_LUT[b as usize];
        if code < 4 {
            acc = (acc << 2) | code;
            scratch.tqual.push(q);
        } else if code == ENC_N {
            // Escape: store base as A (00), mark through the quality field.
            acc <<= 2;
            scratch.tqual.push(ESCAPE_QUAL);
            scratch.n_quals.push(q);
        } else {
            return Err(CodecError::UnencodableBase { base: b });
        }
        k += 1;
        if k == 4 {
            scratch.packed.push(acc);
            acc = 0;
            k = 0;
        }
    }
    if k > 0 {
        scratch.packed.push(acc << (2 * (4 - k)));
    }
    scratch.qual_writer.clear();
    codec.encode(&scratch.tqual, &mut scratch.qual_writer)?;
    Ok(CompressedParts {
        len: seq.len() as u32,
        packed_seq: &scratch.packed,
        qual_stream: scratch.qual_writer.finish(),
        n_quals: &scratch.n_quals,
    })
}

/// Decompress back to `(seq, qual)`.
pub fn decompress_read_fields(
    read: &CompressedRead,
    codec: &QualityCodec,
) -> Result<(Vec<u8>, Vec<u8>), CodecError> {
    let mut seq = Vec::new();
    let mut qual = Vec::new();
    decompress_read_fields_into(
        read.len,
        &read.packed_seq,
        &read.qual_stream,
        &read.n_quals,
        codec,
        &mut seq,
        &mut qual,
    )?;
    Ok((seq, qual))
}

/// [`decompress_read_fields`] from borrowed field slices into caller-owned
/// output buffers (cleared first). Lets deserializers decode straight out
/// of a batch buffer without materializing a [`CompressedRead`].
#[allow(clippy::too_many_arguments)]
pub fn decompress_read_fields_into(
    len: u32,
    packed_seq: &[u8],
    qual_stream: &[u8],
    n_quals: &[u8],
    codec: &QualityCodec,
    seq_out: &mut Vec<u8>,
    qual_out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    let n = len as usize;
    if packed_seq.len() * 4 < n {
        // Same condition under which the bit reader would run dry.
        return Err(CodecError::UnexpectedEof);
    }
    // LUT unpack: one load + 4-byte append per packed byte, then trim the
    // zero-padding tail.
    seq_out.clear();
    seq_out.reserve(n + 3);
    for &byte in &packed_seq[..n.div_ceil(4)] {
        seq_out.extend_from_slice(&DEC_LUT[byte as usize]);
    }
    seq_out.truncate(n);
    qual_out.clear();
    let mut qr = BitReader::new(qual_stream);
    codec.decode_into(&mut qr, qual_out)?;
    if qual_out.len() != n {
        return Err(CodecError::Corrupt(format!(
            "quality stream decoded {} chars, expected {}",
            qual_out.len(),
            len
        )));
    }
    // Restore escaped Ns and their displaced qualities.
    let mut k = 0usize;
    for (b, q) in seq_out.iter_mut().zip(qual_out.iter_mut()) {
        if *q == ESCAPE_QUAL {
            if *b != b'A' {
                return Err(CodecError::Corrupt("escape marker on non-A base".into()));
            }
            *b = b'N';
            *q = *n_quals
                .get(k)
                .ok_or_else(|| CodecError::Corrupt("missing escaped quality".into()))?;
            k += 1;
        }
    }
    if k != n_quals.len() {
        return Err(CodecError::Corrupt("unused escaped qualities".into()));
    }
    Ok(())
}

/// Compression ratio achieved on the raw two fields (`(seq+qual bytes) /
/// compressed payload bytes`) — Figure 4's "improves storage by
/// approximately four times" claim is about the sequence part of this.
pub fn field_compression_ratio(seq_len: usize, read: &CompressedRead) -> f64 {
    (2 * seq_len) as f64 / read.payload_bytes().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> QualityCodec {
        QualityCodec::default_codec()
    }

    #[test]
    fn figure4_example_round_trips() {
        // Figure 4: sequence GGTTNCCTA, quality CCCB#FFFF.
        let seq = b"GGTTNCCTA";
        let qual = b"CCCB#FFFF";
        let c = compress_read_fields(seq, qual, &codec()).unwrap();
        // 9 bases -> 3 packed bytes; the N was escaped.
        assert_eq!(c.packed_seq.len(), 3);
        assert_eq!(c.n_quals, vec![b'#']);
        // Packed bits match the figure: (00 -> A substituted for N).
        assert_eq!(c.packed_seq[0], 0b0101_1111);
        assert_eq!(c.packed_seq[1], 0b0010_1011);
        assert_eq!(c.packed_seq[2], 0b0000_0000);
        let (s2, q2) = decompress_read_fields(&c, &codec()).unwrap();
        assert_eq!(s2, seq.to_vec());
        assert_eq!(q2, qual.to_vec());
    }

    #[test]
    fn lossless_on_all_n_read() {
        let seq = b"NNNNN";
        let qual = b"#!#!#";
        let c = compress_read_fields(seq, qual, &codec()).unwrap();
        assert_eq!(c.n_quals.len(), 5);
        let (s2, q2) = decompress_read_fields(&c, &codec()).unwrap();
        assert_eq!(s2, seq.to_vec());
        assert_eq!(q2, qual.to_vec());
    }

    #[test]
    fn real_q0_base_is_not_confused_with_escape() {
        // '!' is Phred 0 but a legitimate quality; only the out-of-range
        // marker (1) flags an escape.
        let seq = b"ACGT";
        let qual = b"!!!!";
        let c = compress_read_fields(seq, qual, &codec()).unwrap();
        assert!(c.n_quals.is_empty());
        let (s2, q2) = decompress_read_fields(&c, &codec()).unwrap();
        assert_eq!(s2, seq.to_vec());
        assert_eq!(q2, qual.to_vec());
    }

    #[test]
    fn empty_read() {
        let c = compress_read_fields(b"", b"", &codec()).unwrap();
        assert_eq!(c.len, 0);
        let (s2, q2) = decompress_read_fields(&c, &codec()).unwrap();
        assert!(s2.is_empty());
        assert!(q2.is_empty());
    }

    #[test]
    fn rejects_bad_base_and_length_mismatch() {
        assert!(matches!(
            compress_read_fields(b"ACXT", b"IIII", &codec()),
            Err(CodecError::UnencodableBase { base: b'X' })
        ));
        assert!(compress_read_fields(b"ACGT", b"III", &codec()).is_err());
    }

    #[test]
    fn hundred_base_read_compresses_roughly_4x() {
        // A realistic 100bp read: canonical bases + smooth qualities.
        let seq: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        let mut qual = vec![70u8; 100];
        qual[50] = 68;
        let c = compress_read_fields(&seq, &qual, &codec()).unwrap();
        // Sequence: 100 bases -> 25 bytes (4x). Quality: ~1-2 bits/char.
        assert_eq!(c.packed_seq.len(), 25);
        let ratio = field_compression_ratio(100, &c);
        assert!(ratio > 3.0, "ratio = {ratio}");
    }

    #[test]
    fn luts_agree_with_base_primitives() {
        use gpf_formats::base::{decode2, encode2};
        for b in 0..=255u8 {
            match encode2(b) {
                Some(code) => assert_eq!(ENC_LUT[b as usize], code, "byte {b}"),
                None if b == b'N' => assert_eq!(ENC_LUT[b as usize], ENC_N),
                None => assert_eq!(ENC_LUT[b as usize], ENC_INVALID, "byte {b}"),
            }
        }
        for byte in 0..=255u8 {
            for i in 0..4 {
                let code = (byte >> (6 - 2 * i)) & 3;
                assert_eq!(DEC_LUT[byte as usize][i as usize], decode2(code));
            }
        }
    }

    #[test]
    fn scratch_reuse_is_byte_identical_across_records() {
        let codec = codec();
        let reads: [(&[u8], &[u8]); 3] =
            [(b"GGTTNCCTA", b"CCCB#FFFF"), (b"ACGT", b"IIII"), (b"NNN", b"#!#")];
        let mut scratch = ReadCodecScratch::default();
        for (seq, qual) in reads {
            let fresh = compress_read_fields(seq, qual, &codec).unwrap();
            let parts = compress_read_fields_into(seq, qual, &codec, &mut scratch).unwrap();
            assert_eq!(parts.len, fresh.len);
            assert_eq!(parts.packed_seq, &fresh.packed_seq[..]);
            assert_eq!(parts.qual_stream, &fresh.qual_stream[..]);
            assert_eq!(parts.n_quals, &fresh.n_quals[..]);
        }
    }

    #[test]
    fn corrupt_stream_is_detected() {
        let c = compress_read_fields(b"ACGTN", b"IIII#", &codec()).unwrap();
        // Drop the displaced quality -> decode must error, not panic.
        let mut broken = c.clone();
        broken.n_quals.clear();
        assert!(decompress_read_fields(&broken, &codec()).is_err());
        // Truncate the packed sequence.
        let mut broken2 = c;
        broken2.packed_seq.truncate(1);
        assert!(decompress_read_fields(&broken2, &codec()).is_err());
    }
}
