//! # gpf-compress
//!
//! The genomic data compression layer of GPF (§4.2 of the paper) and the
//! record serializers the execution engine shuffles with.
//!
//! The paper's observation: the `Sequence` and `Quality` fields account for
//! 80–90 % of a FASTQ record, so GPF keeps the record structure intact and
//! compresses exactly those two fields:
//!
//! * **Sequence field** ([`sequence`]) — 2-bit encoding `A:00 G:01 C:10 T:11`
//!   (Figure 4). Special characters (`N`) are escaped *through the quality
//!   field* following Deorowicz: the base is rewritten to `A` and its quality
//!   byte replaced by an out-of-range marker, so the decompressor can restore
//!   it. A length prefix precedes the packed bits.
//! * **Quality field** ([`qualcodec`]) — adjacent quality scores are highly
//!   correlated (Figure 5), so the string is converted to a delta sequence
//!   and Huffman-coded with an explicit `EOF` symbol (Figure 6).
//!
//! On top of the codecs, [`serializer`] defines the [`serializer::GpfSerialize`]
//! trait and three wire formats:
//!
//! | kind | models | behaviour |
//! |---|---|---|
//! | `JavaSim`  | Java serialization | verbose headers, fixed-width lengths |
//! | `KryoSim`  | Kryo | varint lengths, raw field bytes |
//! | `Gpf`      | GPF §4.2 | Kryo framing + sequence/quality compression |
//!
//! The engine's shuffle volume, memory footprint and GC-churn metrics are all
//! computed from the byte counts these serializers produce, which is how the
//! paper's Table 3 ("efficient compression of genomic data") and the
//! Kryo-vs-GPF comparisons are reproduced.

//! The codec hot paths (bit I/O, Huffman decode, field pack/unpack) are
//! word-level and table-driven; [`reference`] retains the original scalar
//! implementations so differential tests and the CI perf gate can hold the
//! fast paths byte-identical — and measurably faster.

pub mod bitio;
pub mod error;
pub mod huffman;
pub mod qualcodec;
pub mod reference;
pub mod sequence;
pub mod serializer;
pub mod varint;

pub use error::CodecError;
pub use huffman::HuffmanCodec;
pub use qualcodec::QualityCodec;
pub use sequence::{
    compress_read_fields, compress_read_fields_into, decompress_read_fields,
    decompress_read_fields_into, CompressedParts, CompressedRead, ReadCodecScratch,
};
pub use serializer::{
    deserialize_batch_into, serialize_batch_into, ByteReader, ByteWriter, GpfSerialize,
    SerializerKind,
};
