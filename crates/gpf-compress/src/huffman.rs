//! Canonical Huffman coding over a small integer alphabet.
//!
//! Used by the quality codec (Figure 6 of the paper): quality-score delta
//! sequences are Huffman-coded with an explicit `EOF` symbol terminating each
//! record's stream. The codec is *canonical* so a table can be shipped as a
//! bare list of code lengths.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

/// Maximum code length we allow; with alphabets ≤ 512 and non-pathological
/// frequency tables this is never hit, and it bounds decoder state.
const MAX_CODE_LEN: u8 = 32;

/// Index width of the one-shot decode table: codes of length ≤ 12 bits
/// (every symbol that actually occurs in quality-delta streams) decode in a
/// single table load. 2^12 × 4 bytes = 16 KiB per codec — L1/L2-resident.
const PRIMARY_BITS: u8 = 12;

/// Primary-table entry marking a prefix whose full code is longer than
/// [`PRIMARY_BITS`]; the decoder falls back to the canonical walk.
const LONG_CODE: u32 = u32::MAX;

/// A canonical Huffman codec over symbols `0..alphabet_size`.
#[derive(Debug, Clone)]
pub struct HuffmanCodec {
    /// Code length per symbol (0 = symbol never occurs).
    lengths: Vec<u8>,
    /// Canonical code per symbol.
    codes: Vec<u32>,
    /// Decoding table: symbols sorted by (length, symbol), with per-length
    /// first-code offsets.
    sorted_symbols: Vec<u32>,
    first_code: [u32; MAX_CODE_LEN as usize + 1],
    first_index: [u32; MAX_CODE_LEN as usize + 1],
    /// One-shot decode table indexed by the next [`PRIMARY_BITS`] stream
    /// bits: `symbol << 8 | len` for codes of length ≤ `PRIMARY_BITS`,
    /// [`LONG_CODE`] for longer-code prefixes, 0 for invalid prefixes.
    primary: Vec<u32>,
}

impl HuffmanCodec {
    /// Build a codec from symbol frequencies. Zero-frequency symbols get no
    /// code. At least one symbol must have nonzero frequency.
    ///
    /// # Panics
    /// Panics if all frequencies are zero.
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        assert!(freqs.iter().any(|&f| f > 0), "all Huffman frequencies are zero");
        let lengths = code_lengths(freqs);
        Self::from_lengths(lengths)
    }

    /// Build a codec from known canonical code lengths (table exchange form).
    pub fn from_lengths(lengths: Vec<u8>) -> Self {
        // Count codes per length.
        let mut count = [0u32; MAX_CODE_LEN as usize + 1];
        for &l in &lengths {
            assert!(l <= MAX_CODE_LEN, "code length {l} exceeds cap");
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Canonical first code per length.
        let mut first_code = [0u32; MAX_CODE_LEN as usize + 1];
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
        }
        // Assign codes in (length, symbol) order.
        let mut sorted: Vec<u32> = (0..lengths.len() as u32).filter(|&s| lengths[s as usize] > 0).collect();
        sorted.sort_by_key(|&s| (lengths[s as usize], s));
        let mut codes = vec![0u32; lengths.len()];
        let mut next = first_code;
        for &s in &sorted {
            let l = lengths[s as usize] as usize;
            codes[s as usize] = next[l];
            next[l] += 1;
        }
        // Index of the first symbol of each length within `sorted`.
        let mut first_index = [0u32; MAX_CODE_LEN as usize + 1];
        let mut idx = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            first_index[len] = idx;
            idx += count[len];
        }
        // One-shot decode table: every PRIMARY_BITS-wide window that starts
        // with symbol `s`'s code maps straight to (s, len). Prefix-freeness
        // guarantees short codes and long-code escape markers never collide.
        assert!(
            lengths.len() < (1usize << 24),
            "alphabet too large for packed primary-table entries"
        );
        let mut primary = vec![0u32; 1usize << PRIMARY_BITS];
        for &s in &sorted {
            let l = lengths[s as usize];
            if l <= PRIMARY_BITS {
                let pad = PRIMARY_BITS - l;
                let base = (codes[s as usize] as usize) << pad;
                let entry = (s << 8) | l as u32;
                for slot in &mut primary[base..base + (1usize << pad)] {
                    *slot = entry;
                }
            } else {
                let prefix = (codes[s as usize] >> (l - PRIMARY_BITS)) as usize;
                primary[prefix] = LONG_CODE;
            }
        }
        Self { lengths, codes, sorted_symbols: sorted, first_code, first_index, primary }
    }

    /// Number of symbols in the alphabet.
    pub fn alphabet_size(&self) -> usize {
        self.lengths.len()
    }

    /// Code length of `symbol` in bits (0 when the symbol has no code).
    pub fn code_len(&self, symbol: u32) -> u8 {
        self.lengths[symbol as usize]
    }

    /// The code-length table, for embedding in a stream.
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// The canonical `(code, length)` pair for `symbol`, or `None` when the
    /// symbol has no code. Used by external bit sinks (e.g. the retained
    /// reference encoder) that cannot go through [`HuffmanCodec::encode`].
    pub fn code(&self, symbol: u32) -> Option<(u32, u8)> {
        let l = *self.lengths.get(symbol as usize)?;
        if l == 0 {
            return None;
        }
        Some((self.codes[symbol as usize], l))
    }

    /// Encode one symbol.
    pub fn encode(&self, symbol: u32, w: &mut BitWriter) -> Result<(), CodecError> {
        let l = *self
            .lengths
            .get(symbol as usize)
            .ok_or(CodecError::SymbolOutOfRange { symbol: symbol as i32 })?;
        if l == 0 {
            return Err(CodecError::SymbolOutOfRange { symbol: symbol as i32 });
        }
        w.write_bits(self.codes[symbol as usize], l);
        Ok(())
    }

    /// Decode one symbol: a single primary-table load for codes of length
    /// ≤ [`PRIMARY_BITS`] (the overwhelmingly common case), with the
    /// canonical walk as the chained fallback for longer codes — and for
    /// truncated/invalid streams, so error behavior is bit-for-bit the same
    /// as the walk-only decoder.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, CodecError> {
        let (window, avail) = r.peek_bits(PRIMARY_BITS);
        let entry = self.primary[window as usize];
        if entry != 0 && entry != LONG_CODE {
            let len = entry & 0xFF;
            if len <= avail {
                r.consume(len);
                return Ok(entry >> 8);
            }
            // The zero-padded peek matched a code longer than what actually
            // remains; fall through so the walk reports EOF exactly where
            // the reference decoder would.
        }
        self.decode_canonical(r)
    }

    /// Decode one symbol by walking the canonical per-length tables one bit
    /// at a time — the retained reference decoder, also used as the slow
    /// path for codes longer than [`PRIMARY_BITS`] and for stream-end/error
    /// handling.
    pub fn decode_canonical(&self, r: &mut BitReader<'_>) -> Result<u32, CodecError> {
        self.decode_with(&mut || r.read_bit())
    }

    /// Canonical-walk decode over an arbitrary bit source (one call per
    /// bit). This is the original seed algorithm, kept generic so the
    /// reference bit reader in [`crate::reference`] can drive it too.
    pub fn decode_with<F>(&self, next_bit: &mut F) -> Result<u32, CodecError>
    where
        F: FnMut() -> Result<bool, CodecError>,
    {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | next_bit()? as u32;
            let first = self.first_code[len];
            // Number of codes of this length:
            let n_at_len = if len < MAX_CODE_LEN as usize {
                self.first_index[len + 1] - self.first_index[len]
            } else {
                self.sorted_symbols.len() as u32 - self.first_index[len]
            };
            if n_at_len > 0 && code >= first && code < first + n_at_len {
                let idx = self.first_index[len] + (code - first);
                return Ok(self.sorted_symbols[idx as usize]);
            }
        }
        Err(CodecError::BadHuffmanCode)
    }

    /// Expected bits per symbol under the given frequency distribution.
    pub fn expected_bits(&self, freqs: &[u64]) -> f64 {
        let total: u64 = freqs.iter().sum();
        if total == 0 {
            return 0.0;
        }
        freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f as f64 * self.lengths[s] as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Compute Huffman code lengths from frequencies using the classic two-queue
/// O(n log n) construction over a sorted leaf list.
fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    #[derive(Debug)]
    struct Node {
        weight: u64,
        kind: NodeKind,
    }
    #[derive(Debug)]
    enum NodeKind {
        Leaf(u32),
        Internal(usize, usize),
    }

    let mut nodes: Vec<Node> = Vec::new();
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::new();
    for (s, &f) in freqs.iter().enumerate() {
        if f > 0 {
            nodes.push(Node { weight: f, kind: NodeKind::Leaf(s as u32) });
            heap.push(std::cmp::Reverse((f, nodes.len() - 1)));
        }
    }
    let mut lengths = vec![0u8; freqs.len()];
    if heap.len() == 1 {
        // Single-symbol alphabet still needs a 1-bit code.
        if let Some(std::cmp::Reverse((_, i))) = heap.pop() {
            if let NodeKind::Leaf(s) = nodes[i].kind {
                lengths[s as usize] = 1;
            }
        }
        return lengths;
    }
    while heap.len() > 1 {
        let (Some(std::cmp::Reverse((wa, a))), Some(std::cmp::Reverse((wb, b)))) =
            (heap.pop(), heap.pop())
        else {
            break;
        };
        nodes.push(Node { weight: wa + wb, kind: NodeKind::Internal(a, b) });
        heap.push(std::cmp::Reverse((wa + wb, nodes.len() - 1)));
    }
    // Depth-first walk assigning depths.
    let Some(std::cmp::Reverse((_, root))) = heap.pop() else {
        return lengths; // Empty alphabet: nothing to encode.
    };
    let mut stack = vec![(root, 0u8)];
    while let Some((i, depth)) = stack.pop() {
        match nodes[i].kind {
            NodeKind::Leaf(s) => lengths[s as usize] = depth.max(1),
            NodeKind::Internal(a, b) => {
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
        }
    }
    let _ = nodes.last().map(|n| n.weight); // weights only needed during build
    lengths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(freqs: &[u64], symbols: &[u32]) {
        let codec = HuffmanCodec::from_frequencies(freqs);
        let mut w = BitWriter::new();
        for &s in symbols {
            codec.encode(s, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in symbols {
            assert_eq!(codec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn simple_round_trip() {
        round_trip(&[10, 5, 2, 1], &[0, 1, 2, 3, 0, 0, 1, 2, 3, 3, 3]);
    }

    #[test]
    fn skewed_distribution_gets_short_codes() {
        let freqs = [1000, 10, 10, 10];
        let codec = HuffmanCodec::from_frequencies(&freqs);
        assert!(codec.code_len(0) < codec.code_len(3));
        assert_eq!(codec.code_len(0), 1);
    }

    #[test]
    fn uniform_distribution_is_balanced() {
        let freqs = [5u64; 8];
        let codec = HuffmanCodec::from_frequencies(&freqs);
        for s in 0..8 {
            assert_eq!(codec.code_len(s), 3);
        }
    }

    #[test]
    fn single_symbol_alphabet() {
        let freqs = [0u64, 42, 0];
        let codec = HuffmanCodec::from_frequencies(&freqs);
        assert_eq!(codec.code_len(1), 1);
        round_trip(&freqs, &[1, 1, 1]);
    }

    #[test]
    fn zero_frequency_symbol_rejected_at_encode() {
        let codec = HuffmanCodec::from_frequencies(&[10, 0, 5]);
        let mut w = BitWriter::new();
        assert!(matches!(
            codec.encode(1, &mut w),
            Err(CodecError::SymbolOutOfRange { symbol: 1 })
        ));
    }

    #[test]
    fn out_of_alphabet_symbol_rejected() {
        let codec = HuffmanCodec::from_frequencies(&[10, 5]);
        let mut w = BitWriter::new();
        assert!(codec.encode(99, &mut w).is_err());
    }

    #[test]
    fn lengths_table_round_trip() {
        let freqs = [100, 50, 20, 5, 5, 1];
        let a = HuffmanCodec::from_frequencies(&freqs);
        let b = HuffmanCodec::from_lengths(a.lengths().to_vec());
        let mut w = BitWriter::new();
        for s in [0u32, 5, 3, 2, 1, 0] {
            a.encode(s, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for s in [0u32, 5, 3, 2, 1, 0] {
            assert_eq!(b.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (1..=50).map(|i| i * i).collect();
        let codec = HuffmanCodec::from_frequencies(&freqs);
        let kraft: f64 = (0..50).map(|s| 2f64.powi(-(codec.code_len(s) as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft = {kraft}");
    }

    #[test]
    fn expected_bits_close_to_entropy() {
        // Strongly-peaked distribution like quality deltas.
        let freqs = [1u64, 5, 60, 500, 6000, 500, 60, 5, 1];
        let codec = HuffmanCodec::from_frequencies(&freqs);
        let total: u64 = freqs.iter().sum();
        let entropy: f64 = freqs
            .iter()
            .filter(|&&f| f > 0)
            .map(|&f| {
                let p = f as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        let eb = codec.expected_bits(&freqs);
        assert!(eb >= entropy - 1e-9);
        assert!(eb <= entropy + 1.0, "within 1 bit of entropy: {eb} vs {entropy}");
    }

    /// Fibonacci-like weights force a maximally unbalanced tree, so some
    /// codes exceed PRIMARY_BITS and must take the chained fallback.
    fn long_code_freqs(n: usize) -> Vec<u64> {
        let mut freqs = vec![0u64; n];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let next = a.saturating_add(b);
            a = b;
            b = next;
        }
        freqs
    }

    #[test]
    fn long_codes_take_fallback_and_round_trip() {
        let freqs = long_code_freqs(24);
        let codec = HuffmanCodec::from_frequencies(&freqs);
        let max_len = (0..24).map(|s| codec.code_len(s)).max().unwrap();
        assert!(max_len > PRIMARY_BITS, "workload must exercise the fallback, got {max_len}");
        let symbols: Vec<u32> = (0..24u32).chain((0..24).rev()).collect();
        round_trip(&freqs, &symbols);
    }

    #[test]
    fn table_decode_equals_canonical_walk() {
        let freqs = long_code_freqs(20);
        let codec = HuffmanCodec::from_frequencies(&freqs);
        let symbols: Vec<u32> = (0..20u32).cycle().take(100).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            codec.encode(s, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut fast = BitReader::new(&bytes);
        let mut walk = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(codec.decode(&mut fast).unwrap(), s);
            assert_eq!(codec.decode_canonical(&mut walk).unwrap(), s);
        }
        assert_eq!(fast.bit_pos(), walk.bit_pos());
    }

    #[test]
    fn garbage_bits_decode_to_error_or_symbol() {
        // A depleted reader must yield UnexpectedEof, never panic.
        let codec = HuffmanCodec::from_frequencies(&[3, 3, 3, 3]);
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        let mut decoded = 0;
        loop {
            match codec.decode(&mut r) {
                Ok(_) => decoded += 1,
                Err(CodecError::UnexpectedEof) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(decoded < 16);
        }
    }
}
