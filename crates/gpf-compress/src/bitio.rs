//! Bit-level writer/reader over byte buffers.
//!
//! Bits are written MSB-first within each byte, which keeps the packed
//! 2-bit sequences readable in hex dumps in the same order as Figure 4's
//! `(00 00 10 01) ...` illustration.
//!
//! Both ends are **word-level**: a `u64` accumulator buffers up to 64
//! pending bits, and memory is touched once per 8-byte word instead of
//! once per bit (the seed implementation pushed a single bit per loop
//! iteration). The emitted byte stream is identical to the scalar
//! reference retained in [`crate::reference`] — property tests in
//! `tests/proptests.rs` hold the two equal on random streams.

use crate::error::CodecError;

/// Appends bits MSB-first to a `Vec<u8>` through a 64-bit accumulator.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Pending bits, left-aligned: the first-written bit sits at bit 63.
    acc: u64,
    /// Number of valid bits in `acc` (`0..=63`; a full word is flushed
    /// immediately, so 64 is never observable between calls).
    nbits: u32,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the low `n` bits of `value` (MSB of the group first). `n ≤ 32`.
    #[inline]
    pub fn write_bits(&mut self, value: u32, n: u8) {
        debug_assert!(n <= 32);
        if n == 0 {
            return;
        }
        let n = n as u32;
        let v = (value as u64) & ((1u64 << n) - 1);
        let free = 64 - self.nbits;
        if n <= free {
            self.acc |= v << (free - n);
            self.nbits += n;
            if self.nbits == 64 {
                self.buf.extend_from_slice(&self.acc.to_be_bytes());
                self.acc = 0;
                self.nbits = 0;
            }
        } else {
            // Fill the accumulator, flush the word, start the next one with
            // the leftover low bits of `v`.
            let rem = n - free; // 1..=31
            self.acc |= v >> rem;
            self.buf.extend_from_slice(&self.acc.to_be_bytes());
            self.acc = v << (64 - rem);
            self.nbits = rem;
        }
    }

    /// Write a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u32, 1);
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Flush the partial accumulator (zero-padding the final byte) and
    /// return the full byte buffer. The writer is byte-aligned afterwards;
    /// call [`BitWriter::clear`] before reusing it for a fresh stream.
    pub fn finish(&mut self) -> &[u8] {
        if self.nbits > 0 {
            let nbytes = (self.nbits as usize).div_ceil(8);
            let bytes = self.acc.to_be_bytes();
            self.buf.extend_from_slice(&bytes[..nbytes]);
            self.acc = 0;
            self.nbits = 0;
        }
        &self.buf
    }

    /// Reset to an empty stream, keeping the allocated capacity (scratch
    /// reuse for per-record encoders).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.acc = 0;
        self.nbits = 0;
    }

    /// Finish, zero-padding the final byte, and return the buffer.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.finish();
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice through a 64-bit accumulator.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next byte to load into the accumulator.
    byte_pos: usize,
    /// Loaded-but-unconsumed bits, left-aligned; bits below `nbits` are 0.
    acc: u64,
    /// Valid bits in `acc`.
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Create a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, byte_pos: 0, acc: 0, nbits: 0 }
    }

    /// Top up the accumulator from the buffer (whole word when aligned,
    /// byte-at-a-time otherwise).
    #[inline]
    fn refill(&mut self) {
        if self.nbits == 0 && self.byte_pos + 8 <= self.buf.len() {
            let mut w = [0u8; 8];
            w.copy_from_slice(&self.buf[self.byte_pos..self.byte_pos + 8]);
            self.acc = u64::from_be_bytes(w);
            self.nbits = 64;
            self.byte_pos += 8;
            return;
        }
        while self.nbits <= 56 && self.byte_pos < self.buf.len() {
            self.acc |= (self.buf[self.byte_pos] as u64) << (56 - self.nbits);
            self.byte_pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `n ≤ 32` bits, MSB-first.
    #[inline]
    pub fn read_bits(&mut self, n: u8) -> Result<u32, CodecError> {
        debug_assert!(n <= 32);
        if n == 0 {
            return Ok(0);
        }
        let n = n as u32;
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                // Matches the scalar reference: the bits that do remain are
                // consumed before the EOF is reported.
                self.nbits = 0;
                self.acc = 0;
                self.byte_pos = self.buf.len();
                return Err(CodecError::UnexpectedEof);
            }
        }
        let v = (self.acc >> (64 - n)) as u32;
        self.acc <<= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Peek up to `n ≤ 32` bits without consuming them. Returns the bits
    /// left-padded into the low end of a `u32` exactly as [`read_bits`]
    /// would (missing bits past end-of-stream read as 0), plus the number
    /// of *real* bits available (`min(n, remaining)`).
    ///
    /// [`read_bits`]: BitReader::read_bits
    #[inline]
    pub fn peek_bits(&mut self, n: u8) -> (u32, u32) {
        debug_assert!(n <= 32);
        if n == 0 {
            return (0, 0);
        }
        let n = n as u32;
        if self.nbits < n {
            self.refill();
        }
        // Bits beyond `nbits` in `acc` are zero by invariant, so the peek
        // is implicitly zero-padded.
        ((self.acc >> (64 - n)) as u32, self.nbits.min(n))
    }

    /// Consume `n` bits previously surfaced by [`BitReader::peek_bits`]
    /// (`n` must not exceed the available count that call returned).
    #[inline]
    pub fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.nbits);
        self.acc <<= n;
        self.nbits -= n;
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.byte_pos * 8 - self.nbits as usize
    }

    /// Remaining readable bits.
    pub fn remaining_bits(&self) -> usize {
        (self.buf.len() - self.byte_pos) * 8 + self.nbits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFF, 8);
        w.write_bits(0, 1);
        w.write_bits(0b11001, 5);
        let bit_len = w.bit_len();
        assert_eq!(bit_len, 17);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(5).unwrap(), 0b11001);
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b0, 1);
        w.write_bits(0b1, 1);
        // 101 padded with zeros -> 1010_0000.
        assert_eq!(w.into_bytes(), vec![0b1010_0000]);
    }

    #[test]
    fn two_bit_packing_matches_figure4() {
        // Figure 4: GGTTACCTA with A:00 G:01 C:10 T:11
        // -> 01 01 11 11 00 10 10 11 00, padded to 3 bytes.
        let codes = [1u32, 1, 3, 3, 0, 2, 2, 3, 0];
        let mut w = BitWriter::new();
        for c in codes {
            w.write_bits(c, 2);
        }
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b0101_1111, 0b0010_1011, 0b0000_0000]);
    }

    #[test]
    fn eof_detection() {
        let mut r = BitReader::new(&[0xAB]);
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn empty_writer() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn word_boundary_crossings() {
        // 3 bits then 8x32 bits crosses the accumulator boundary repeatedly.
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        for i in 0..8u32 {
            w.write_bits(0xDEAD_0000 | i, 32);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        for i in 0..8u32 {
            assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_0000 | i);
        }
    }

    #[test]
    fn full_words_round_trip_exactly() {
        let mut w = BitWriter::new();
        for i in 0..64u32 {
            w.write_bits(i & 1, 1);
        }
        assert_eq!(w.bit_len(), 64);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 8);
        let mut r = BitReader::new(&bytes);
        for i in 0..64u32 {
            assert_eq!(r.read_bits(1).unwrap(), i & 1);
        }
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn peek_then_consume_equals_read() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011_0110_1100, 12);
        w.write_bits(0b01, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let (bits, avail) = r.peek_bits(12);
        assert_eq!(avail, 12);
        assert_eq!(bits, 0b1011_0110_1100);
        r.consume(5);
        assert_eq!(r.bit_pos(), 5);
        assert_eq!(r.read_bits(7).unwrap(), 0b0110_1100 & 0x7F);
    }

    #[test]
    fn peek_past_end_zero_pads() {
        let mut w = BitWriter::new();
        w.write_bits(0b110, 3);
        let bytes = w.into_bytes(); // one byte: 1100_0000
        let mut r = BitReader::new(&bytes);
        let (bits, avail) = r.peek_bits(12);
        assert_eq!(avail, 8, "one padded byte available");
        assert_eq!(bits, 0b1100_0000_0000);
        r.consume(8);
        let (bits, avail) = r.peek_bits(12);
        assert_eq!((bits, avail), (0, 0));
    }

    #[test]
    fn clear_and_finish_reuse() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        assert_eq!(w.finish(), &[0b1010_0000]);
        w.clear();
        w.write_bits(0xFF, 8);
        assert_eq!(w.finish(), &[0xFF]);
        assert_eq!(w.bit_len(), 8);
    }
}
