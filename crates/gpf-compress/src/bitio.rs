//! Bit-level writer/reader over byte buffers.
//!
//! Bits are written MSB-first within each byte, which keeps the packed
//! 2-bit sequences readable in hex dumps in the same order as Figure 4's
//! `(00 00 10 01) ...` illustration.

use crate::error::CodecError;

/// Appends bits MSB-first to a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in the final partial byte (0 = byte-aligned).
    nbits: u8,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the low `n` bits of `value` (MSB of the group first). `n ≤ 32`.
    pub fn write_bits(&mut self, value: u32, n: u8) {
        debug_assert!(n <= 32);
        for i in (0..n).rev() {
            let bit = ((value >> i) & 1) as u8;
            if self.nbits == 0 {
                self.buf.push(bit << 7);
            } else if let Some(last) = self.buf.last_mut() {
                *last |= bit << (7 - self.nbits);
            }
            self.nbits = (self.nbits + 1) % 8;
        }
    }

    /// Write a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u32, 1);
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.nbits == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.nbits as usize
        }
    }

    /// Finish, zero-padding the final byte, and return the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next bit index.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Create a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Read `n ≤ 32` bits, MSB-first.
    pub fn read_bits(&mut self, n: u8) -> Result<u32, CodecError> {
        debug_assert!(n <= 32);
        let mut v: u32 = 0;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u32;
        }
        Ok(v)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        let byte = self.buf.get(self.pos / 8).ok_or(CodecError::UnexpectedEof)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit == 1)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Remaining readable bits.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFF, 8);
        w.write_bits(0, 1);
        w.write_bits(0b11001, 5);
        let bit_len = w.bit_len();
        assert_eq!(bit_len, 17);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(5).unwrap(), 0b11001);
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b0, 1);
        w.write_bits(0b1, 1);
        // 101 padded with zeros -> 1010_0000.
        assert_eq!(w.into_bytes(), vec![0b1010_0000]);
    }

    #[test]
    fn two_bit_packing_matches_figure4() {
        // Figure 4: GGTTACCTA with A:00 G:01 C:10 T:11
        // -> 01 01 11 11 00 10 10 11 00, padded to 3 bytes.
        let codes = [1u32, 1, 3, 3, 0, 2, 2, 3, 0];
        let mut w = BitWriter::new();
        for c in codes {
            w.write_bits(c, 2);
        }
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b0101_1111, 0b0010_1011, 0b0000_0000]);
    }

    #[test]
    fn eof_detection() {
        let mut r = BitReader::new(&[0xAB]);
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn empty_writer() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }
}
