//! LEB128 varints and zigzag signed encoding — the "Kryo-like" compact
//! integer framing used by the `KryoSim` and `Gpf` serializers.

use crate::error::CodecError;

/// Append a u64 as LEB128.
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 u64 from `buf[*pos..]`, advancing `pos`.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-encode a signed value so small magnitudes stay small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append an i64 as zigzag LEB128.
pub fn write_i64(buf: &mut Vec<u8>, v: i64) {
    write_u64(buf, zigzag(v));
}

/// Read a zigzag LEB128 i64.
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Result<i64, CodecError> {
    Ok(unzigzag(read_u64(buf, pos)?))
}

/// Number of bytes [`write_u64`] would produce.
pub fn u64_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), u64_len(v), "len mismatch for {v}");
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn i64_round_trip() {
        for v in [0i64, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_small_values_stay_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(-93)), -93);
    }

    #[test]
    fn truncated_input_errors() {
        let buf = vec![0x80, 0x80];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn overlong_input_errors() {
        let buf = vec![0x80; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Err(CodecError::VarintOverflow));
    }
}
