//! Quality-field compression (Figures 5 and 6 of the paper).
//!
//! Adjacent quality scores are far more predictable than the scores
//! themselves (Figure 5): the vast majority of adjacent differences fall in
//! a narrow band around zero. GPF therefore converts the quality string into
//! a **delta sequence** (first value encoded as a delta from zero) and
//! Huffman-codes it with an explicit **EOF** symbol terminating each record
//! (Figure 6).
//!
//! Two table modes are provided:
//!
//! * [`QualityCodec::default_codec`] — a static table shaped like a HiSeq
//!   delta distribution (sharply peaked at 0), with every legal symbol given
//!   a nonzero floor frequency so *any* valid quality string is encodable;
//! * [`QualityCodec::train`] — a table fitted to a sample of quality strings
//!   (what a per-partition trainer would ship alongside the partition).

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;
use crate::huffman::HuffmanCodec;

/// Quality characters live in `[1, 126]`: Phred+33 chars `[33,126]` plus the
/// out-of-range escape marker `1` used by the sequence codec for `N` bases.
pub const MIN_QUAL_CHAR: u8 = 1;
/// Upper end of the legal quality character range.
pub const MAX_QUAL_CHAR: u8 = 126;

/// Deltas range over `[-(MAX-MIN), MAX-MIN]` = `[-125, 125]`.
const DELTA_OFFSET: i32 = 126;
/// Symbols `0..=252` are deltas; `253` is EOF.
const EOF_SYMBOL: u32 = 253;
/// Alphabet size including EOF.
const ALPHABET: usize = 254;

/// Delta + Huffman quality codec.
#[derive(Debug, Clone)]
pub struct QualityCodec {
    huff: HuffmanCodec,
}

#[inline]
fn delta_to_symbol(d: i32) -> u32 {
    (d + DELTA_OFFSET) as u32
}

#[inline]
fn symbol_to_delta(s: u32) -> i32 {
    s as i32 - DELTA_OFFSET
}

impl QualityCodec {
    /// Build from an explicit symbol frequency table (`ALPHABET` entries).
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        assert_eq!(freqs.len(), ALPHABET);
        Self { huff: HuffmanCodec::from_frequencies(freqs) }
    }

    /// The static default table: geometric decay around delta 0 (the paper's
    /// Figure 5 shape — most adjacent differences within ±10), a secondary
    /// bump for first-character values (delta from zero lands near +33..+75),
    /// and a floor of 1 for every symbol so arbitrary input stays encodable.
    pub fn default_codec() -> Self {
        let mut freqs = vec![1u64; ALPHABET];
        for d in -125i32..=125 {
            let sym = delta_to_symbol(d) as usize;
            let mag = d.unsigned_abs();
            if mag <= 40 {
                // ~55% at 0, halving every step for |d| ≤ 10, then a long tail.
                let f = if mag <= 10 {
                    1_000_000u64 >> mag
                } else {
                    1_000 / (mag as u64)
                };
                freqs[sym] += f;
            }
        }
        // First character of each record: raw values ~ +33..+75 from zero.
        for v in 33i32..=75 {
            freqs[delta_to_symbol(v) as usize] += 2_000;
        }
        // Escape transitions (into/out of qual char 1) are rare but present.
        freqs[delta_to_symbol(-60) as usize] += 100;
        freqs[delta_to_symbol(60) as usize] += 100;
        // EOF occurs once per record (~once per 100 symbols).
        freqs[EOF_SYMBOL as usize] += 20_000;
        Self::from_frequencies(&freqs)
    }

    /// Fit a table to a sample of quality strings.
    pub fn train<'a>(sample: impl IntoIterator<Item = &'a [u8]>) -> Self {
        let mut freqs = vec![1u64; ALPHABET];
        for qual in sample {
            let mut prev = 0i32;
            for &c in qual {
                let d = c as i32 - prev;
                freqs[delta_to_symbol(d) as usize] += 1;
                prev = c as i32;
            }
            freqs[EOF_SYMBOL as usize] += 1;
        }
        Self::from_frequencies(&freqs)
    }

    /// Encode one quality string as deltas + EOF.
    ///
    /// The `BitWriter` is the caller's scratch: per-record encoders keep one
    /// writer alive and [`BitWriter::clear`] it between records instead of
    /// allocating a stream per call.
    ///
    /// Returns an error if any character is outside `[MIN_QUAL_CHAR,
    /// MAX_QUAL_CHAR]`.
    pub fn encode(&self, qual: &[u8], w: &mut BitWriter) -> Result<(), CodecError> {
        let mut prev = 0i32;
        for &c in qual {
            if !(MIN_QUAL_CHAR..=MAX_QUAL_CHAR).contains(&c) {
                return Err(CodecError::SymbolOutOfRange { symbol: c as i32 });
            }
            let d = c as i32 - prev;
            self.huff.encode(delta_to_symbol(d), w)?;
            prev = c as i32;
        }
        self.huff.encode(EOF_SYMBOL, w)
    }

    /// Delta-transform `qual` and emit each symbol's canonical `(code,
    /// length)` pair through `emit` — the encode loop factored over an
    /// arbitrary bit sink so the retained reference writer in
    /// [`crate::reference`] provably shares the transform with
    /// [`QualityCodec::encode`].
    pub fn encode_with<F>(&self, qual: &[u8], mut emit: F) -> Result<(), CodecError>
    where
        F: FnMut(u32, u8) -> Result<(), CodecError>,
    {
        let mut prev = 0i32;
        for &c in qual {
            if !(MIN_QUAL_CHAR..=MAX_QUAL_CHAR).contains(&c) {
                return Err(CodecError::SymbolOutOfRange { symbol: c as i32 });
            }
            let sym = delta_to_symbol(c as i32 - prev);
            let (code, len) = self
                .huff
                .code(sym)
                .ok_or(CodecError::SymbolOutOfRange { symbol: sym as i32 })?;
            emit(code, len)?;
            prev = c as i32;
        }
        let (code, len) = self
            .huff
            .code(EOF_SYMBOL)
            .ok_or(CodecError::SymbolOutOfRange { symbol: EOF_SYMBOL as i32 })?;
        emit(code, len)
    }

    /// Decode one quality string (terminated by EOF).
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.decode_into(r, &mut out)?;
        Ok(out)
    }

    /// Decode one quality string (terminated by EOF), appending onto `out`.
    /// Callers decoding many records keep one buffer and `clear()` between
    /// records, so the decode loop never allocates.
    pub fn decode_into(&self, r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), CodecError> {
        let mut prev = 0i32;
        loop {
            let sym = self.huff.decode(r)?;
            if sym == EOF_SYMBOL {
                return Ok(());
            }
            let v = prev + symbol_to_delta(sym);
            if !(MIN_QUAL_CHAR as i32..=MAX_QUAL_CHAR as i32).contains(&v) {
                return Err(CodecError::Corrupt(format!("decoded quality {v} out of range")));
            }
            out.push(v as u8);
            prev = v;
        }
    }

    /// Decode one quality string through an arbitrary bit source using the
    /// canonical walk — the seed decode loop, kept for the reference path
    /// in [`crate::reference`].
    pub fn decode_with<F>(&self, mut next_bit: F, out: &mut Vec<u8>) -> Result<(), CodecError>
    where
        F: FnMut() -> Result<bool, CodecError>,
    {
        let mut prev = 0i32;
        loop {
            let sym = self.huff.decode_with(&mut next_bit)?;
            if sym == EOF_SYMBOL {
                return Ok(());
            }
            let v = prev + symbol_to_delta(sym);
            if !(MIN_QUAL_CHAR as i32..=MAX_QUAL_CHAR as i32).contains(&v) {
                return Err(CodecError::Corrupt(format!("decoded quality {v} out of range")));
            }
            out.push(v as u8);
            prev = v;
        }
    }

    /// Encode to a fresh byte buffer (convenience for tests and serializers).
    pub fn encode_to_bytes(&self, qual: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut w = BitWriter::new();
        self.encode(qual, &mut w)?;
        Ok(w.into_bytes())
    }

    /// Expected compressed bits per input character for a delta histogram.
    pub fn expected_bits(&self, freqs: &[u64]) -> f64 {
        self.huff.expected_bits(freqs)
    }

    /// Access the canonical code-length table (for table exchange).
    pub fn lengths(&self) -> &[u8] {
        self.huff.lengths()
    }
}

impl Default for QualityCodec {
    fn default() -> Self {
        Self::default_codec()
    }
}

/// Compute the delta histogram of a set of quality strings — the data behind
/// the paper's Figure 5(b).
pub fn delta_histogram<'a>(sample: impl IntoIterator<Item = &'a [u8]>) -> Vec<u64> {
    let mut freqs = vec![0u64; ALPHABET];
    for qual in sample {
        let mut prev: Option<i32> = None;
        for &c in qual {
            if let Some(p) = prev {
                freqs[delta_to_symbol(c as i32 - p) as usize] += 1;
            }
            prev = Some(c as i32);
        }
    }
    freqs
}

/// Map a histogram index back to its delta value (for reporting).
pub fn histogram_delta(index: usize) -> i32 {
    symbol_to_delta(index as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(codec: &QualityCodec, qual: &[u8]) {
        let bytes = codec.encode_to_bytes(qual).unwrap();
        let mut r = BitReader::new(&bytes);
        assert_eq!(codec.decode(&mut r).unwrap(), qual.to_vec());
    }

    #[test]
    fn figure6_example_round_trips() {
        // "CCCB(SOH)FFFF" — the paper's Figure 6 example with the escape char.
        let qual = [67u8, 67, 67, 66, 1, 70, 70, 70, 70];
        round_trip(&QualityCodec::default_codec(), &qual);
    }

    #[test]
    fn empty_and_single_round_trip() {
        let codec = QualityCodec::default_codec();
        round_trip(&codec, b"");
        round_trip(&codec, b"I");
        round_trip(&codec, b"!");
    }

    #[test]
    fn full_range_round_trips() {
        let codec = QualityCodec::default_codec();
        let qual: Vec<u8> = (MIN_QUAL_CHAR..=MAX_QUAL_CHAR).collect();
        round_trip(&codec, &qual);
        let rev: Vec<u8> = (MIN_QUAL_CHAR..=MAX_QUAL_CHAR).rev().collect();
        round_trip(&codec, &rev);
    }

    #[test]
    fn rejects_out_of_range_chars() {
        let codec = QualityCodec::default_codec();
        let mut w = BitWriter::new();
        assert!(codec.encode(&[0u8], &mut w).is_err());
        assert!(codec.encode(&[127u8], &mut w).is_err());
    }

    #[test]
    fn typical_hiseq_quals_compress_well() {
        // Flat high-quality string with small dips — like a real HiSeq read.
        let mut qual = vec![70u8; 100];
        qual[20] = 68;
        qual[21] = 69;
        qual[80] = 65;
        let codec = QualityCodec::default_codec();
        let bytes = codec.encode_to_bytes(&qual).unwrap();
        // 100 chars -> should take far fewer than 100 bytes; peaked deltas
        // give ~1-2 bits/char.
        assert!(bytes.len() < 40, "compressed to {} bytes", bytes.len());
        round_trip(&codec, &qual);
    }

    #[test]
    fn trained_codec_beats_default_on_its_sample() {
        let sample: Vec<Vec<u8>> = (0..50)
            .map(|i| {
                let mut q = vec![60u8 + (i % 3) as u8; 80];
                q[i % 80] = 55;
                q
            })
            .collect();
        let refs: Vec<&[u8]> = sample.iter().map(|v| v.as_slice()).collect();
        let trained = QualityCodec::train(refs.iter().copied());
        let default = QualityCodec::default_codec();
        let t: usize = refs.iter().map(|q| trained.encode_to_bytes(q).unwrap().len()).sum();
        let d: usize = refs.iter().map(|q| default.encode_to_bytes(q).unwrap().len()).sum();
        assert!(t <= d, "trained {t} vs default {d}");
    }

    #[test]
    fn multiple_records_share_a_stream() {
        let codec = QualityCodec::default_codec();
        let quals: [&[u8]; 3] = [b"IIII", b"!!!!", b"ABCDEFG"];
        let mut w = BitWriter::new();
        for q in quals {
            codec.encode(q, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for q in quals {
            assert_eq!(codec.decode(&mut r).unwrap(), q.to_vec());
        }
    }

    #[test]
    fn delta_histogram_shape() {
        let quals: [&[u8]; 2] = [&[70, 70, 69, 70], &[40, 40, 40]];
        let h = delta_histogram(quals.iter().copied());
        // deltas: 0, -1, +1 | 0, 0  -> histogram: 3 zeros, one -1, one +1.
        assert_eq!(h[delta_to_symbol(0) as usize], 3);
        assert_eq!(h[delta_to_symbol(-1) as usize], 1);
        assert_eq!(h[delta_to_symbol(1) as usize], 1);
        assert_eq!(histogram_delta(delta_to_symbol(-5) as usize), -5);
    }
}
