//! Retained scalar reference implementations of the hot codec paths.
//!
//! The word-level [`crate::bitio`] rewrite and the table-driven Huffman
//! decoder must stay **byte-identical** to the original seed encoder. This
//! module keeps the original bit-at-a-time implementations alive so that
//!
//! * differential property tests (`tests/proptests.rs`) can hold the fast
//!   paths equal to the originals on random streams, and
//! * the CI perf gate (`experiments --codec-bench`) can measure the
//!   fast-vs-reference throughput ratio in release builds.
//!
//! Nothing here is a fallback at runtime — production code always uses the
//! word-level paths. Keep this file verbatim-slow; "optimizing" it defeats
//! both uses.

use crate::error::CodecError;
use crate::qualcodec::QualityCodec;
use crate::sequence::{CompressedRead, ESCAPE_QUAL};
use gpf_formats::base::{decode2, encode2};

/// The seed `BitWriter`: appends one bit per loop iteration.
#[derive(Debug, Default)]
pub struct RefBitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in the final partial byte (0 = byte-aligned).
    nbits: u8,
}

impl RefBitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the low `n` bits of `value` (MSB of the group first). `n ≤ 32`.
    pub fn write_bits(&mut self, value: u32, n: u8) {
        debug_assert!(n <= 32);
        for i in (0..n).rev() {
            let bit = ((value >> i) & 1) as u8;
            if self.nbits == 0 {
                self.buf.push(bit << 7);
            } else if let Some(last) = self.buf.last_mut() {
                *last |= bit << (7 - self.nbits);
            }
            self.nbits = (self.nbits + 1) % 8;
        }
    }

    /// Write a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u32, 1);
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.nbits == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.nbits as usize
        }
    }

    /// Finish, zero-padding the final byte, and return the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// The seed `BitReader`: extracts one bit per call through byte indexing.
#[derive(Debug)]
pub struct RefBitReader<'a> {
    buf: &'a [u8],
    /// Next bit index.
    pos: usize,
}

impl<'a> RefBitReader<'a> {
    /// Create a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Read `n ≤ 32` bits, MSB-first.
    pub fn read_bits(&mut self, n: u8) -> Result<u32, CodecError> {
        debug_assert!(n <= 32);
        let mut v: u32 = 0;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u32;
        }
        Ok(v)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        let byte = self.buf.get(self.pos / 8).ok_or(CodecError::UnexpectedEof)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit == 1)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Remaining readable bits.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }
}

/// Seed-equivalent quality encode: delta transform + canonical Huffman,
/// one bit at a time into a [`RefBitWriter`].
pub fn encode_quality_ref(
    codec: &QualityCodec,
    qual: &[u8],
    w: &mut RefBitWriter,
) -> Result<(), CodecError> {
    codec.encode_with(qual, |code, len| {
        w.write_bits(code, len);
        Ok(())
    })
}

/// Seed-equivalent quality decode: canonical-walk Huffman, one bit at a
/// time from a [`RefBitReader`], appending onto `out`.
pub fn decode_quality_ref(
    codec: &QualityCodec,
    r: &mut RefBitReader<'_>,
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    codec.decode_with(|| r.read_bit(), out)
}

/// The seed `compress_read_fields`: per-base 2-bit writes through the
/// scalar bit writer, fresh allocations per record.
pub fn compress_read_fields_ref(
    seq: &[u8],
    qual: &[u8],
    codec: &QualityCodec,
) -> Result<CompressedRead, CodecError> {
    if seq.len() != qual.len() {
        return Err(CodecError::Corrupt(format!(
            "seq len {} != qual len {}",
            seq.len(),
            qual.len()
        )));
    }
    let mut packed = RefBitWriter::new();
    let mut tqual = Vec::with_capacity(qual.len());
    let mut n_quals = Vec::new();
    for (&b, &q) in seq.iter().zip(qual) {
        match encode2(b) {
            Some(code) => {
                packed.write_bits(code as u32, 2);
                tqual.push(q);
            }
            None if b == b'N' => {
                packed.write_bits(0, 2);
                tqual.push(ESCAPE_QUAL);
                n_quals.push(q);
            }
            None => return Err(CodecError::UnencodableBase { base: b }),
        }
    }
    let mut qw = RefBitWriter::new();
    encode_quality_ref(codec, &tqual, &mut qw)?;
    Ok(CompressedRead {
        len: seq.len() as u32,
        packed_seq: packed.into_bytes(),
        qual_stream: qw.into_bytes(),
        n_quals,
    })
}

/// The seed `decompress_read_fields`: 2 bits per base through the scalar
/// bit reader, canonical-walk quality decode.
pub fn decompress_read_fields_ref(
    read: &CompressedRead,
    codec: &QualityCodec,
) -> Result<(Vec<u8>, Vec<u8>), CodecError> {
    let mut seq = Vec::with_capacity(read.len as usize);
    let mut br = RefBitReader::new(&read.packed_seq);
    for _ in 0..read.len {
        let code = br.read_bits(2)? as u8;
        seq.push(decode2(code));
    }
    let mut qr = RefBitReader::new(&read.qual_stream);
    let mut qual = Vec::new();
    decode_quality_ref(codec, &mut qr, &mut qual)?;
    if qual.len() != read.len as usize {
        return Err(CodecError::Corrupt(format!(
            "quality stream decoded {} chars, expected {}",
            qual.len(),
            read.len
        )));
    }
    let mut k = 0usize;
    for (b, q) in seq.iter_mut().zip(qual.iter_mut()) {
        if *q == ESCAPE_QUAL {
            if *b != b'A' {
                return Err(CodecError::Corrupt("escape marker on non-A base".into()));
            }
            *b = b'N';
            *q = *read
                .n_quals
                .get(k)
                .ok_or_else(|| CodecError::Corrupt("missing escaped quality".into()))?;
            k += 1;
        }
    }
    if k != read.n_quals.len() {
        return Err(CodecError::Corrupt("unused escaped qualities".into()));
    }
    Ok((seq, qual))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_bitio_round_trip() {
        let mut w = RefBitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFF, 8);
        w.write_bit(false);
        assert_eq!(w.bit_len(), 12);
        let bytes = w.into_bytes();
        let mut r = RefBitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(!r.read_bit().unwrap());
        assert_eq!(r.bit_pos(), 12);
        assert_eq!(r.remaining_bits(), 4);
    }

    #[test]
    fn ref_field_codec_matches_fast_path_on_figure4() {
        let codec = QualityCodec::default_codec();
        let seq = b"GGTTNCCTA";
        let qual = b"CCCB#FFFF";
        let slow = compress_read_fields_ref(seq, qual, &codec).unwrap();
        let fast = crate::sequence::compress_read_fields(seq, qual, &codec).unwrap();
        assert_eq!(slow, fast);
        let (s2, q2) = decompress_read_fields_ref(&slow, &codec).unwrap();
        assert_eq!(s2, seq.to_vec());
        assert_eq!(q2, qual.to_vec());
    }
}
