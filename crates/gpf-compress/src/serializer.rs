//! Record serializers for in-memory storage and shuffle.
//!
//! Spark offers Java serialization and Kryo; the paper (§4.2) adds GPF's own
//! genomic compression on top of a Kryo-like framing. This module models all
//! three as [`SerializerKind`]s sharing one [`GpfSerialize`] trait, so the
//! engine can persist / shuffle any record type under any serializer and the
//! byte counts honestly reflect each format's overheads:
//!
//! * **`JavaSim`** — fixed-width big-endian primitives, an object header per
//!   record and an 8-byte reference handle per variable-length field
//!   (modelling `java.io.ObjectOutputStream`'s verbosity).
//! * **`KryoSim`** — varint lengths and raw field bytes (modelling Kryo's
//!   compact registered-class encoding).
//! * **`Gpf`** — `KryoSim` framing, but sequence/quality fields go through
//!   [`crate::sequence`] / [`crate::qualcodec`] compression.

use crate::error::CodecError;
use crate::qualcodec::QualityCodec;
use crate::sequence::{
    compress_read_fields_into, decompress_read_fields_into, ReadCodecScratch,
};
use crate::varint;
use gpf_formats::cigar::{Cigar, CigarOp};
use gpf_formats::fastq::{FastqPair, FastqRecord};
use gpf_formats::genome::{GenomeInterval, GenomePosition};
use gpf_formats::sam::{SamFlags, SamRecord};
use gpf_formats::vcf::{Genotype, VcfRecord};
use std::sync::OnceLock;

/// The process-wide default quality codec (static Huffman table).
pub fn default_quality_codec() -> &'static QualityCodec {
    static QC: OnceLock<QualityCodec> = OnceLock::new();
    QC.get_or_init(QualityCodec::default_codec)
}

/// Which wire format to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SerializerKind {
    /// Java-serialization-like: verbose, fixed-width.
    JavaSim,
    /// Kryo-like: compact varints, raw payloads.
    KryoSim,
    /// GPF: Kryo framing plus genomic sequence/quality compression (§4.2).
    Gpf,
}

/// Bytes of per-record object header charged by `JavaSim`.
const JAVA_OBJECT_HEADER: usize = 16;
/// Bytes of per-field reference handle charged by `JavaSim`.
const JAVA_FIELD_HANDLE: usize = 8;

/// Serialization sink.
pub struct ByteWriter {
    /// Output buffer.
    pub buf: Vec<u8>,
    kind: SerializerKind,
    /// Lazily-created codec scratch so Gpf-kind writers compress every
    /// record of a batch through the same buffers (see
    /// [`crate::sequence::ReadCodecScratch`]).
    codec_scratch: Option<Box<ReadCodecScratch>>,
}

impl ByteWriter {
    /// Create a writer for `kind`.
    pub fn new(kind: SerializerKind) -> Self {
        Self { buf: Vec::new(), kind, codec_scratch: None }
    }

    /// The active serializer kind.
    pub fn kind(&self) -> SerializerKind {
        self.kind
    }

    /// Charge a per-record object header (JavaSim only).
    pub fn object_header(&mut self) {
        if self.kind == SerializerKind::JavaSim {
            self.buf.extend_from_slice(&[0xAC; JAVA_OBJECT_HEADER]);
        }
    }

    /// Write one raw byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a u16 (fixed for JavaSim, varint otherwise).
    pub fn write_u16(&mut self, v: u16) {
        match self.kind {
            SerializerKind::JavaSim => self.buf.extend_from_slice(&v.to_be_bytes()),
            _ => varint::write_u64(&mut self.buf, v as u64),
        }
    }

    /// Write a u32.
    pub fn write_u32(&mut self, v: u32) {
        match self.kind {
            SerializerKind::JavaSim => self.buf.extend_from_slice(&v.to_be_bytes()),
            _ => varint::write_u64(&mut self.buf, v as u64),
        }
    }

    /// Write a u64.
    pub fn write_u64(&mut self, v: u64) {
        match self.kind {
            SerializerKind::JavaSim => self.buf.extend_from_slice(&v.to_be_bytes()),
            _ => varint::write_u64(&mut self.buf, v),
        }
    }

    /// Write an i64 (zigzag varint for compact kinds).
    pub fn write_i64(&mut self, v: i64) {
        match self.kind {
            SerializerKind::JavaSim => self.buf.extend_from_slice(&v.to_be_bytes()),
            _ => varint::write_i64(&mut self.buf, v),
        }
    }

    /// Write an f64 (always 8 bytes).
    pub fn write_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    /// Write a variable-length byte field.
    pub fn write_bytes(&mut self, b: &[u8]) {
        match self.kind {
            SerializerKind::JavaSim => {
                self.buf.extend_from_slice(&[0xDE; JAVA_FIELD_HANDLE]);
                self.buf.extend_from_slice(&(b.len() as u32).to_be_bytes());
                self.buf.extend_from_slice(b);
            }
            _ => {
                varint::write_u64(&mut self.buf, b.len() as u64);
                self.buf.extend_from_slice(b);
            }
        }
    }

    /// Write a string field.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }
}

/// Deserialization source.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    kind: SerializerKind,
}

impl<'a> ByteReader<'a> {
    /// Create a reader for `kind` over `buf`.
    pub fn new(kind: SerializerKind, buf: &'a [u8]) -> Self {
        Self { buf, pos: 0, kind }
    }

    /// The active serializer kind.
    pub fn kind(&self) -> SerializerKind {
        self.kind
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take8(&mut self) -> Result<[u8; 8], CodecError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(b)
    }

    /// Skip the JavaSim object header (no-op for other kinds).
    pub fn object_header(&mut self) -> Result<(), CodecError> {
        if self.kind == SerializerKind::JavaSim {
            self.take(JAVA_OBJECT_HEADER)?;
        }
        Ok(())
    }

    /// Read one raw byte.
    pub fn read_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a u16.
    pub fn read_u16(&mut self) -> Result<u16, CodecError> {
        match self.kind {
            SerializerKind::JavaSim => {
                let b = self.take(2)?;
                Ok(u16::from_be_bytes([b[0], b[1]]))
            }
            _ => {
                let v = varint::read_u64(self.buf, &mut self.pos)?;
                u16::try_from(v).map_err(|_| CodecError::Corrupt("u16 overflow".into()))
            }
        }
    }

    /// Read a u32.
    pub fn read_u32(&mut self) -> Result<u32, CodecError> {
        match self.kind {
            SerializerKind::JavaSim => {
                let b = self.take(4)?;
                Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
            }
            _ => {
                let v = varint::read_u64(self.buf, &mut self.pos)?;
                u32::try_from(v).map_err(|_| CodecError::Corrupt("u32 overflow".into()))
            }
        }
    }

    /// Read a u64.
    pub fn read_u64(&mut self) -> Result<u64, CodecError> {
        match self.kind {
            SerializerKind::JavaSim => Ok(u64::from_be_bytes(self.take8()?)),
            _ => varint::read_u64(self.buf, &mut self.pos),
        }
    }

    /// Read an i64.
    pub fn read_i64(&mut self) -> Result<i64, CodecError> {
        match self.kind {
            SerializerKind::JavaSim => Ok(i64::from_be_bytes(self.take8()?)),
            _ => varint::read_i64(self.buf, &mut self.pos),
        }
    }

    /// Read an f64.
    pub fn read_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(u64::from_be_bytes(self.take8()?)))
    }

    /// Read a variable-length byte field.
    pub fn read_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        match self.kind {
            SerializerKind::JavaSim => {
                self.take(JAVA_FIELD_HANDLE)?;
                let len = {
                    let b = self.take(4)?;
                    u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize
                };
                Ok(self.take(len)?.to_vec())
            }
            _ => {
                let len = varint::read_u64(self.buf, &mut self.pos)? as usize;
                Ok(self.take(len)?.to_vec())
            }
        }
    }

    /// Read a variable-length byte field as a borrowed slice of the input
    /// buffer — no allocation; the slice lives as long as the buffer.
    pub fn read_bytes_ref(&mut self) -> Result<&'a [u8], CodecError> {
        match self.kind {
            SerializerKind::JavaSim => {
                self.take(JAVA_FIELD_HANDLE)?;
                let len = {
                    let b = self.take(4)?;
                    u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize
                };
                self.take(len)
            }
            _ => {
                let len = varint::read_u64(self.buf, &mut self.pos)? as usize;
                self.take(len)
            }
        }
    }

    /// Read a string field.
    pub fn read_str(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.read_bytes()?)
            .map_err(|_| CodecError::Corrupt("invalid UTF-8 string".into()))
    }
}

/// A type serializable under every [`SerializerKind`].
pub trait GpfSerialize: Sized {
    /// Append this value to the writer.
    fn write(&self, w: &mut ByteWriter);
    /// Read a value back.
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;
    /// Resident heap footprint of this value in bytes (inline size plus
    /// owned heap payloads), used by the engine's memory-budget accountant
    /// for exact partition accounting. Deliberately counts payload *length*
    /// rather than allocator capacity so the charge is deterministic across
    /// runs. The default covers heap-free types; containers override.
    fn resident_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

/// Bump the `codec.*` throughput counters for one batch, but only while
/// tracing is on: the registry lookup takes a mutex, so untraced runs skip it
/// entirely.
fn note_codec_throughput(bytes_name: &'static str, records_name: &'static str, bytes: usize, records: usize) {
    if gpf_trace::enabled() {
        gpf_trace::counter(bytes_name).add(bytes as u64);
        gpf_trace::counter(records_name).add(records as u64);
    }
}

/// Serialize a batch of records (count-prefixed) under `kind`.
pub fn serialize_batch<T: GpfSerialize>(kind: SerializerKind, items: &[T]) -> Vec<u8> {
    // Heap attribution: batch-level codec work charges the serde tag. The
    // per-bucket `_into` variants are left unscoped — their callers hold a
    // scope per task, keeping TLS pushes off the per-bucket hot path.
    let _scope = gpf_trace::alloc::scope(gpf_trace::alloc::AllocTag::Serde);
    let mut out = Vec::new();
    serialize_batch_into(kind, items, &mut out);
    out
}

/// [`serialize_batch`] appending onto a caller-owned buffer (shuffle map
/// tasks serialize many buckets back-to-back into one reused scratch
/// buffer). Returns the number of bytes appended.
pub fn serialize_batch_into<T: GpfSerialize>(
    kind: SerializerKind,
    items: &[T],
    out: &mut Vec<u8>,
) -> usize {
    let start = out.len();
    let mut w = ByteWriter::new(kind);
    // Write through the caller's buffer directly — swap it into the writer
    // for the duration so no intermediate Vec exists.
    std::mem::swap(&mut w.buf, out);
    varint::write_u64(&mut w.buf, items.len() as u64);
    for item in items {
        item.write(&mut w);
    }
    std::mem::swap(&mut w.buf, out);
    let written = out.len() - start;
    note_codec_throughput(
        gpf_trace::names::CODEC_SERIALIZE_BYTES,
        gpf_trace::names::CODEC_SERIALIZE_RECORDS,
        written,
        items.len(),
    );
    written
}

/// Deserialize a batch written by [`serialize_batch`].
pub fn deserialize_batch<T: GpfSerialize>(
    kind: SerializerKind,
    buf: &[u8],
) -> Result<Vec<T>, CodecError> {
    // Heap attribution: see serialize_batch.
    let _scope = gpf_trace::alloc::scope(gpf_trace::alloc::AllocTag::Serde);
    let mut out = Vec::new();
    deserialize_batch_into(kind, buf, &mut out)?;
    Ok(out)
}

/// [`deserialize_batch`] appending onto a caller-owned vector (shuffle
/// reduce tasks pre-size one output and drain every map segment into it).
/// Returns the number of records appended.
pub fn deserialize_batch_into<T: GpfSerialize>(
    kind: SerializerKind,
    buf: &[u8],
    out: &mut Vec<T>,
) -> Result<usize, CodecError> {
    let mut r = ByteReader::new(kind, buf);
    let mut pos = 0usize;
    let n = varint::read_u64(buf, &mut pos)? as usize;
    r.pos = pos;
    out.reserve(n.min(1 << 20));
    for _ in 0..n {
        out.push(T::read(&mut r)?);
    }
    note_codec_throughput(
        gpf_trace::names::CODEC_DESERIALIZE_BYTES,
        gpf_trace::names::CODEC_DESERIALIZE_RECORDS,
        buf.len(),
        n,
    );
    Ok(n)
}

/// Serialized size of a batch without keeping the buffer.
pub fn serialized_size<T: GpfSerialize>(kind: SerializerKind, items: &[T]) -> usize {
    serialize_batch(kind, items).len()
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_prim {
    ($t:ty, $w:ident, $r:ident) => {
        impl GpfSerialize for $t {
            fn write(&self, w: &mut ByteWriter) {
                w.$w(*self as _);
            }
            fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
                Ok(r.$r()? as $t)
            }
        }
    };
}

impl_prim!(u8, write_u8, read_u8);
impl_prim!(u16, write_u16, read_u16);
impl_prim!(u32, write_u32, read_u32);
impl_prim!(u64, write_u64, read_u64);
impl_prim!(i64, write_i64, read_i64);
impl_prim!(usize, write_u64, read_u64);

impl GpfSerialize for f64 {
    fn write(&self, w: &mut ByteWriter) {
        w.write_f64(*self);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.read_f64()
    }
}

impl GpfSerialize for bool {
    fn write(&self, w: &mut ByteWriter) {
        w.write_u8(*self as u8);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(r.read_u8()? != 0)
    }
}

impl GpfSerialize for String {
    fn write(&self, w: &mut ByteWriter) {
        w.write_str(self);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.read_str()
    }
    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.len()
    }
}

impl<T: GpfSerialize> GpfSerialize for Vec<T> {
    fn write(&self, w: &mut ByteWriter) {
        w.write_u64(self.len() as u64);
        for item in self {
            item.write(w);
        }
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let n = r.read_u64()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::read(r)?);
        }
        Ok(out)
    }
    fn resident_bytes(&self) -> usize {
        // Each element's inline size lives in this Vec's heap buffer, so
        // the elements' own resident_bytes already covers it.
        std::mem::size_of::<Self>() + self.iter().map(T::resident_bytes).sum::<usize>()
    }
}

impl<T: GpfSerialize> GpfSerialize for Option<T> {
    fn write(&self, w: &mut ByteWriter) {
        match self {
            None => w.write_u8(0),
            Some(v) => {
                w.write_u8(1);
                v.write(w);
            }
        }
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::read(r)?)),
            t => Err(CodecError::Corrupt(format!("bad Option tag {t}"))),
        }
    }
    fn resident_bytes(&self) -> usize {
        // The inline T is part of Option's own layout; add only the heap
        // excess beyond it.
        std::mem::size_of::<Self>()
            + self
                .as_ref()
                .map(|v| v.resident_bytes().saturating_sub(std::mem::size_of::<T>()))
                .unwrap_or(0)
    }
}

impl<A: GpfSerialize, B: GpfSerialize> GpfSerialize for (A, B) {
    fn write(&self, w: &mut ByteWriter) {
        self.0.write(w);
        self.1.write(w);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::read(r)?, B::read(r)?))
    }
    fn resident_bytes(&self) -> usize {
        self.0.resident_bytes() + self.1.resident_bytes()
    }
}

impl<A: GpfSerialize, B: GpfSerialize, C: GpfSerialize> GpfSerialize for (A, B, C) {
    fn write(&self, w: &mut ByteWriter) {
        self.0.write(w);
        self.1.write(w);
        self.2.write(w);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::read(r)?, B::read(r)?, C::read(r)?))
    }
    fn resident_bytes(&self) -> usize {
        self.0.resident_bytes() + self.1.resident_bytes() + self.2.resident_bytes()
    }
}

// ---------------------------------------------------------------------------
// Genomic record impls
// ---------------------------------------------------------------------------

impl GpfSerialize for GenomePosition {
    fn write(&self, w: &mut ByteWriter) {
        w.write_u32(self.contig);
        w.write_u64(self.pos);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(GenomePosition { contig: r.read_u32()?, pos: r.read_u64()? })
    }
}

impl GpfSerialize for GenomeInterval {
    fn write(&self, w: &mut ByteWriter) {
        w.write_u32(self.contig);
        w.write_u64(self.start);
        w.write_u64(self.end);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let contig = r.read_u32()?;
        let start = r.read_u64()?;
        let end = r.read_u64()?;
        if start > end {
            return Err(CodecError::Corrupt("interval start > end".into()));
        }
        Ok(GenomeInterval { contig, start, end })
    }
}

/// Write sequence+quality under the active kind: raw fields for
/// JavaSim/KryoSim, compressed for Gpf.
fn write_seq_qual(w: &mut ByteWriter, seq: &[u8], qual: &[u8]) {
    match w.kind() {
        SerializerKind::Gpf => {
            // Split-borrow the writer: the codec scratch and the output
            // buffer are disjoint fields. Gpf always uses Kryo (varint)
            // framing, so the fields are framed inline below — byte-for-byte
            // what write_u32/write_bytes would have produced.
            let ByteWriter { buf, codec_scratch, .. } = w;
            let scratch = codec_scratch.get_or_insert_with(Default::default);
            let c = compress_read_fields_into(seq, qual, default_quality_codec(), scratch)
                // gpf-lint: allow(no-panic): SamRecord construction validates
                // seq/qual lengths match, which is the only failure mode of
                // compress_read_fields_into; a panic here means a SamRecord
                // invariant was broken upstream.
                .expect("record validated at construction");
            varint::write_u64(buf, c.len as u64);
            for field in [c.packed_seq, c.qual_stream, c.n_quals] {
                varint::write_u64(buf, field.len() as u64);
                buf.extend_from_slice(field);
            }
        }
        _ => {
            w.write_bytes(seq);
            w.write_bytes(qual);
        }
    }
}

/// Inverse of [`write_seq_qual`].
fn read_seq_qual(r: &mut ByteReader<'_>) -> Result<(Vec<u8>, Vec<u8>), CodecError> {
    match r.kind() {
        SerializerKind::Gpf => {
            let len = r.read_u32()?;
            // Borrow the three compressed fields straight out of the batch
            // buffer; only the decoded seq/qual (owned by the record being
            // built) are allocated.
            let packed_seq = r.read_bytes_ref()?;
            let qual_stream = r.read_bytes_ref()?;
            let n_quals = r.read_bytes_ref()?;
            let mut seq = Vec::new();
            let mut qual = Vec::new();
            decompress_read_fields_into(
                len,
                packed_seq,
                qual_stream,
                n_quals,
                default_quality_codec(),
                &mut seq,
                &mut qual,
            )?;
            Ok((seq, qual))
        }
        _ => {
            let seq = r.read_bytes()?;
            let qual = r.read_bytes()?;
            Ok((seq, qual))
        }
    }
}

impl GpfSerialize for FastqRecord {
    fn write(&self, w: &mut ByteWriter) {
        w.object_header();
        w.write_str(&self.name);
        write_seq_qual(w, &self.seq, &self.qual);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.object_header()?;
        let name = r.read_str()?;
        let (seq, qual) = read_seq_qual(r)?;
        Ok(FastqRecord { name, seq, qual })
    }
    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.name.len() + self.seq.len() + self.qual.len()
    }
}

impl GpfSerialize for FastqPair {
    fn write(&self, w: &mut ByteWriter) {
        self.r1.write(w);
        self.r2.write(w);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(FastqPair { r1: FastqRecord::read(r)?, r2: FastqRecord::read(r)? })
    }
    fn resident_bytes(&self) -> usize {
        self.r1.resident_bytes() + self.r2.resident_bytes()
    }
}

fn cigar_op_code(op: CigarOp) -> u32 {
    match op {
        CigarOp::Match => 0,
        CigarOp::Ins => 1,
        CigarOp::Del => 2,
        CigarOp::RefSkip => 3,
        CigarOp::SoftClip => 4,
        CigarOp::HardClip => 5,
        CigarOp::Pad => 6,
        CigarOp::Equal => 7,
        CigarOp::Diff => 8,
    }
}

fn cigar_op_from_code(code: u32) -> Result<CigarOp, CodecError> {
    Ok(match code {
        0 => CigarOp::Match,
        1 => CigarOp::Ins,
        2 => CigarOp::Del,
        3 => CigarOp::RefSkip,
        4 => CigarOp::SoftClip,
        5 => CigarOp::HardClip,
        6 => CigarOp::Pad,
        7 => CigarOp::Equal,
        8 => CigarOp::Diff,
        c => return Err(CodecError::Corrupt(format!("bad CIGAR op code {c}"))),
    })
}

impl GpfSerialize for Cigar {
    fn write(&self, w: &mut ByteWriter) {
        w.write_u32(self.0.len() as u32);
        for &(len, op) in &self.0 {
            w.write_u32(len << 4 | cigar_op_code(op));
        }
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let n = r.read_u32()? as usize;
        let mut ops = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let packed = r.read_u32()?;
            let len = packed >> 4;
            if len == 0 {
                return Err(CodecError::Corrupt("zero-length CIGAR op".into()));
            }
            ops.push((len, cigar_op_from_code(packed & 0xF)?));
        }
        Ok(Cigar(ops))
    }
    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.0.len() * std::mem::size_of::<(u32, CigarOp)>()
    }
}

impl GpfSerialize for SamRecord {
    fn write(&self, w: &mut ByteWriter) {
        w.object_header();
        w.write_str(&self.name);
        w.write_u16(self.flags.0);
        w.write_u32(self.contig);
        w.write_u64(self.pos);
        w.write_u8(self.mapq);
        self.cigar.write(w);
        w.write_u32(self.mate_contig);
        w.write_u64(self.mate_pos);
        w.write_i64(self.tlen);
        write_seq_qual(w, &self.seq, &self.qual);
        w.write_u16(self.read_group);
        w.write_u16(self.edit_distance);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.object_header()?;
        let name = r.read_str()?;
        let flags = SamFlags(r.read_u16()?);
        let contig = r.read_u32()?;
        let pos = r.read_u64()?;
        let mapq = r.read_u8()?;
        let cigar = Cigar::read(r)?;
        let mate_contig = r.read_u32()?;
        let mate_pos = r.read_u64()?;
        let tlen = r.read_i64()?;
        let (seq, qual) = read_seq_qual(r)?;
        let read_group = r.read_u16()?;
        let edit_distance = r.read_u16()?;
        Ok(SamRecord {
            name,
            flags,
            contig,
            pos,
            mapq,
            cigar,
            mate_contig,
            mate_pos,
            tlen,
            seq,
            qual,
            read_group,
            edit_distance,
        })
    }
    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.name.len()
            + self.cigar.0.len() * std::mem::size_of::<(u32, CigarOp)>()
            + self.seq.len()
            + self.qual.len()
    }
}

impl GpfSerialize for VcfRecord {
    fn write(&self, w: &mut ByteWriter) {
        w.object_header();
        w.write_u32(self.contig);
        w.write_u64(self.pos);
        w.write_bytes(&self.ref_allele);
        w.write_bytes(&self.alt_allele);
        w.write_f64(self.qual);
        let gt = match self.genotype {
            Genotype::Het => 0u8,
            Genotype::HomAlt => 1,
            Genotype::HomRef => 2,
        };
        w.write_u8(gt);
        w.write_u32(self.depth);
    }
    fn read(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.object_header()?;
        let contig = r.read_u32()?;
        let pos = r.read_u64()?;
        let ref_allele = r.read_bytes()?;
        let alt_allele = r.read_bytes()?;
        let qual = r.read_f64()?;
        let genotype = match r.read_u8()? {
            0 => Genotype::Het,
            1 => Genotype::HomAlt,
            2 => Genotype::HomRef,
            t => return Err(CodecError::Corrupt(format!("bad genotype tag {t}"))),
        };
        let depth = r.read_u32()?;
        Ok(VcfRecord { contig, pos, ref_allele, alt_allele, qual, genotype, depth })
    }
    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.ref_allele.len() + self.alt_allele.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [SerializerKind; 3] =
        [SerializerKind::JavaSim, SerializerKind::KryoSim, SerializerKind::Gpf];

    fn fastq() -> FastqRecord {
        FastqRecord::new(
            "SRR622461.1/1",
            b"ACGTNACGTACGTACGTACG",
            b"IIII#IIIIIIIHHGGFFEE",
        )
        .unwrap()
    }

    fn sam() -> SamRecord {
        SamRecord {
            name: "SRR622461.1".into(),
            flags: SamFlags(SamFlags::PAIRED | SamFlags::PROPER_PAIR),
            contig: 3,
            pos: 12_345_677,
            mapq: 60,
            cigar: Cigar::parse("5S90M5S").unwrap(),
            mate_contig: 3,
            mate_pos: 12_345_977,
            tlen: -400,
            seq: (0..100).map(|i| b"ACGT"[i % 4]).collect(),
            qual: vec![b'F'; 100],
            read_group: 1,
            edit_distance: 3,
        }
    }

    #[test]
    fn fastq_round_trips_under_all_kinds() {
        for kind in KINDS {
            let buf = serialize_batch(kind, &[fastq()]);
            let out: Vec<FastqRecord> = deserialize_batch(kind, &buf).unwrap();
            assert_eq!(out, vec![fastq()], "kind {kind:?}");
        }
    }

    #[test]
    fn sam_round_trips_under_all_kinds() {
        for kind in KINDS {
            let buf = serialize_batch(kind, &[sam()]);
            let out: Vec<SamRecord> = deserialize_batch(kind, &buf).unwrap();
            assert_eq!(out, vec![sam()], "kind {kind:?}");
        }
    }

    #[test]
    fn vcf_round_trips_under_all_kinds() {
        let v = VcfRecord {
            contig: 0,
            pos: 999,
            ref_allele: b"AT".to_vec(),
            alt_allele: b"A".to_vec(),
            qual: 87.5,
            genotype: Genotype::HomAlt,
            depth: 42,
        };
        for kind in KINDS {
            let buf = serialize_batch(kind, std::slice::from_ref(&v));
            let out: Vec<VcfRecord> = deserialize_batch(kind, &buf).unwrap();
            assert_eq!(out, vec![v.clone()], "kind {kind:?}");
        }
    }

    #[test]
    fn pair_round_trips() {
        let pair = FastqPair::new(
            FastqRecord::new("f/1", b"ACGT", b"IIII").unwrap(),
            FastqRecord::new("f/2", b"TTTT", b"FFFF").unwrap(),
        )
        .unwrap();
        for kind in KINDS {
            let buf = serialize_batch(kind, std::slice::from_ref(&pair));
            let out: Vec<FastqPair> = deserialize_batch(kind, &buf).unwrap();
            assert_eq!(out, vec![pair.clone()]);
        }
    }

    #[test]
    fn size_ordering_java_gt_kryo_gt_gpf() {
        // A realistic batch: 100bp reads with smooth qualities.
        let records: Vec<SamRecord> = (0..64).map(|_| sam()).collect();
        let java = serialized_size(SerializerKind::JavaSim, &records);
        let kryo = serialized_size(SerializerKind::KryoSim, &records);
        let gpf = serialized_size(SerializerKind::Gpf, &records);
        assert!(java > kryo, "java {java} vs kryo {kryo}");
        assert!(kryo > gpf, "kryo {kryo} vs gpf {gpf}");
        // §4.2: GPF's sequence part compresses ~4x; whole record comfortably >1.5x.
        assert!(kryo as f64 / gpf as f64 > 1.5, "kryo/gpf = {}", kryo as f64 / gpf as f64);
    }

    #[test]
    fn primitives_and_containers_round_trip() {
        for kind in KINDS {
            let data: Vec<(u64, String)> =
                vec![(1, "a".into()), (u64::MAX, "bb".into()), (0, String::new())];
            let buf = serialize_batch(kind, &data);
            let out: Vec<(u64, String)> = deserialize_batch(kind, &buf).unwrap();
            assert_eq!(out, data);

            let opt: Vec<Option<u32>> = vec![None, Some(7), Some(u32::MAX)];
            let buf = serialize_batch(kind, &opt);
            let out: Vec<Option<u32>> = deserialize_batch(kind, &buf).unwrap();
            assert_eq!(out, opt);

            let nested: Vec<Vec<u8>> = vec![vec![], vec![1, 2, 3]];
            let buf = serialize_batch(kind, &nested);
            let out: Vec<Vec<u8>> = deserialize_batch(kind, &buf).unwrap();
            assert_eq!(out, nested);
        }
    }

    #[test]
    fn genome_types_round_trip() {
        for kind in KINDS {
            let pos = GenomePosition::new(4, 12_345_678);
            let buf = serialize_batch(kind, &[pos]);
            assert_eq!(deserialize_batch::<GenomePosition>(kind, &buf).unwrap(), vec![pos]);

            let iv = GenomeInterval::new(1, 100, 200);
            let buf = serialize_batch(kind, &[iv]);
            assert_eq!(deserialize_batch::<GenomeInterval>(kind, &buf).unwrap(), vec![iv]);
        }
    }

    #[test]
    fn truncated_buffer_errors_cleanly() {
        for kind in KINDS {
            let buf = serialize_batch(kind, &[sam()]);
            for cut in [1usize, buf.len() / 2, buf.len() - 1] {
                let r: Result<Vec<SamRecord>, _> = deserialize_batch(kind, &buf[..cut]);
                assert!(r.is_err(), "kind {kind:?} cut {cut} should fail");
            }
        }
    }

    #[test]
    fn negative_tlen_survives_all_kinds() {
        let mut r = sam();
        r.tlen = i64::MIN + 1;
        for kind in KINDS {
            let buf = serialize_batch(kind, std::slice::from_ref(&r));
            let out: Vec<SamRecord> = deserialize_batch(kind, &buf).unwrap();
            assert_eq!(out[0].tlen, r.tlen);
        }
    }

    #[test]
    fn batch_into_appends_and_matches_plain() {
        for kind in KINDS {
            let items = vec![sam(), sam()];
            let plain = serialize_batch(kind, &items);
            let mut buf = vec![0xEE, 0xFF];
            let n = serialize_batch_into(kind, &items, &mut buf);
            assert_eq!(n, plain.len());
            assert_eq!(&buf[..2], &[0xEE, 0xFF], "prefix must survive");
            assert_eq!(&buf[2..], &plain[..], "appended bytes must match plain serialize");

            let mut out: Vec<SamRecord> = vec![sam()];
            let n2 = deserialize_batch_into(kind, &plain, &mut out).unwrap();
            assert_eq!(n2, 2);
            assert_eq!(out.len(), 3, "deserialize_batch_into must append");
            assert_eq!(&out[1..], &items[..]);
        }
    }

    #[test]
    fn gpf_wire_format_matches_reference_codec() {
        // The Gpf batch stream must stay byte-identical to the seed
        // encoder: reconstruct the expected bytes from the retained
        // reference field codec plus varint framing.
        let rec = fastq();
        let buf = serialize_batch(SerializerKind::Gpf, std::slice::from_ref(&rec));
        let c = crate::reference::compress_read_fields_ref(
            &rec.seq,
            &rec.qual,
            default_quality_codec(),
        )
        .unwrap();
        let mut expect = Vec::new();
        varint::write_u64(&mut expect, 1); // batch count
        varint::write_u64(&mut expect, rec.name.len() as u64);
        expect.extend_from_slice(rec.name.as_bytes());
        varint::write_u64(&mut expect, c.len as u64);
        for field in [&c.packed_seq, &c.qual_stream, &c.n_quals] {
            varint::write_u64(&mut expect, field.len() as u64);
            expect.extend_from_slice(field);
        }
        assert_eq!(buf, expect);
    }

    #[test]
    fn resident_bytes_counts_heap_payloads() {
        // Primitives: inline size only.
        assert_eq!(7u64.resident_bytes(), 8);
        // String: inline handle + payload length (not capacity — the charge
        // must be deterministic across allocator behaviors).
        let mut s = String::with_capacity(1024);
        s.push_str("abc");
        assert_eq!(s.resident_bytes(), std::mem::size_of::<String>() + 3);
        // Vec<u8>: handle + one byte per element.
        let v: Vec<u8> = vec![0; 100];
        assert_eq!(v.resident_bytes(), std::mem::size_of::<Vec<u8>>() + 100);
        // Records: strictly larger than their inline size once heap fields
        // are non-empty, and grow with payload.
        let r = sam();
        assert!(r.resident_bytes() > std::mem::size_of::<SamRecord>());
        let mut bigger = sam();
        bigger.seq.extend_from_slice(b"ACGT");
        bigger.qual.extend_from_slice(b"FFFF");
        assert_eq!(bigger.resident_bytes(), r.resident_bytes() + 8);
        // Vec of records sums element footprints.
        let batch = vec![sam(), sam()];
        assert_eq!(
            batch.resident_bytes(),
            std::mem::size_of::<Vec<SamRecord>>() + 2 * sam().resident_bytes()
        );
    }

    #[test]
    fn empty_batch() {
        for kind in KINDS {
            let buf = serialize_batch::<SamRecord>(kind, &[]);
            let out: Vec<SamRecord> = deserialize_batch(kind, &buf).unwrap();
            assert!(out.is_empty());
        }
    }
}
