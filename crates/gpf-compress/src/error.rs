//! Codec error type.

use std::fmt;

/// An error raised while encoding or decoding compressed genomic data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input byte stream ended before a complete value was read.
    UnexpectedEof,
    /// A varint ran longer than its maximum legal width.
    VarintOverflow,
    /// A Huffman bit pattern did not resolve to any symbol.
    BadHuffmanCode,
    /// A symbol was outside the codec's alphabet.
    SymbolOutOfRange { symbol: i32 },
    /// A sequence character could not be 2-bit encoded and was not escaped.
    UnencodableBase { base: u8 },
    /// Structural corruption (bad tag, impossible length, ...).
    Corrupt(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::VarintOverflow => write!(f, "varint overflow"),
            CodecError::BadHuffmanCode => write!(f, "unresolvable Huffman code"),
            CodecError::SymbolOutOfRange { symbol } => write!(f, "symbol {symbol} out of range"),
            CodecError::UnencodableBase { base } => {
                write!(f, "cannot 2-bit encode base `{}`", *base as char)
            }
            CodecError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CodecError::UnexpectedEof.to_string().contains("end of input"));
        assert!(CodecError::UnencodableBase { base: b'N' }.to_string().contains('N'));
        assert!(CodecError::Corrupt("x".into()).to_string().contains('x'));
    }
}
