//! Property-based round-trip tests for the compression layer.

use gpf_compress::qualcodec::QualityCodec;
use gpf_compress::sequence::{compress_read_fields, decompress_read_fields};
use gpf_compress::serializer::{deserialize_batch, serialize_batch, SerializerKind};
use gpf_formats::fastq::FastqRecord;
use gpf_formats::sam::{SamFlags, SamRecord};
use gpf_formats::Cigar;
use gpf_support::proptest::prelude::*;

fn seq_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            8 => Just(b'A'),
            8 => Just(b'C'),
            8 => Just(b'G'),
            8 => Just(b'T'),
            1 => Just(b'N')
        ],
        0..max_len,
    )
}

fn read_strategy(max_len: usize) -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    seq_strategy(max_len).prop_flat_map(|s| {
        let len = s.len();
        (Just(s), proptest::collection::vec(33u8..=126, len..=len))
    })
}

proptest! {
    #[test]
    fn field_compression_round_trips((seq, qual) in read_strategy(300)) {
        let codec = QualityCodec::default_codec();
        let c = compress_read_fields(&seq, &qual, &codec).unwrap();
        let (s2, q2) = decompress_read_fields(&c, &codec).unwrap();
        prop_assert_eq!(s2, seq);
        prop_assert_eq!(q2, qual);
    }

    #[test]
    fn packed_sequence_is_quarter_size((seq, qual) in read_strategy(300)) {
        let codec = QualityCodec::default_codec();
        let c = compress_read_fields(&seq, &qual, &codec).unwrap();
        prop_assert_eq!(c.packed_seq.len(), seq.len().div_ceil(4));
    }

    #[test]
    fn quality_codec_round_trips(qual in proptest::collection::vec(33u8..=126, 0..500)) {
        let codec = QualityCodec::default_codec();
        let bytes = codec.encode_to_bytes(&qual).unwrap();
        let mut r = gpf_compress::bitio::BitReader::new(&bytes);
        prop_assert_eq!(codec.decode(&mut r).unwrap(), qual);
    }

    #[test]
    fn fastq_batches_round_trip_under_all_serializers(
        reads in proptest::collection::vec(read_strategy(120), 0..20)
    ) {
        let records: Vec<FastqRecord> = reads
            .into_iter()
            .enumerate()
            .map(|(i, (seq, qual))| FastqRecord::new(format!("r{i}"), &seq, &qual).unwrap())
            .collect();
        for kind in [SerializerKind::JavaSim, SerializerKind::KryoSim, SerializerKind::Gpf] {
            let buf = serialize_batch(kind, &records);
            let out: Vec<FastqRecord> = deserialize_batch(kind, &buf).unwrap();
            prop_assert_eq!(&out, &records);
        }
    }

    #[test]
    fn sam_records_round_trip_under_all_serializers(
        (seq, qual) in read_strategy(150),
        flags in any::<u16>(),
        pos in 0u64..3_000_000_000,
        tlen in any::<i64>(),
    ) {
        let cigar = if seq.is_empty() {
            Cigar::unavailable()
        } else {
            Cigar::from_ops(vec![(seq.len() as u32, gpf_formats::CigarOp::Match)])
        };
        let rec = SamRecord {
            name: "prop".into(),
            flags: SamFlags(flags),
            contig: 2,
            pos,
            mapq: 37,
            cigar,
            mate_contig: u32::MAX,
            mate_pos: 0,
            tlen,
            seq,
            qual,
            read_group: 9,
            edit_distance: 5,
        };
        for kind in [SerializerKind::JavaSim, SerializerKind::KryoSim, SerializerKind::Gpf] {
            let buf = serialize_batch(kind, std::slice::from_ref(&rec));
            let out: Vec<SamRecord> = deserialize_batch(kind, &buf).unwrap();
            prop_assert_eq!(&out[0], &rec);
        }
    }

    #[test]
    fn gpf_never_larger_than_java(reads in proptest::collection::vec(read_strategy(150), 1..10)) {
        let records: Vec<FastqRecord> = reads
            .into_iter()
            .enumerate()
            .map(|(i, (seq, qual))| FastqRecord::new(format!("r{i}"), &seq, &qual).unwrap())
            .collect();
        let java = serialize_batch(SerializerKind::JavaSim, &records).len();
        let gpf = serialize_batch(SerializerKind::Gpf, &records).len();
        prop_assert!(gpf <= java, "gpf {gpf} > java {java}");
    }
}
