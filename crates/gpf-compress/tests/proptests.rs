//! Property-based round-trip tests for the compression layer, plus the
//! differential properties that hold the word-level/table-driven hot paths
//! byte-identical to the retained scalar reference implementations.

use gpf_compress::bitio::{BitReader, BitWriter};
use gpf_compress::huffman::HuffmanCodec;
use gpf_compress::qualcodec::QualityCodec;
use gpf_compress::reference::{
    compress_read_fields_ref, decompress_read_fields_ref, RefBitReader, RefBitWriter,
};
use gpf_compress::sequence::{compress_read_fields, decompress_read_fields, CompressedRead};
use gpf_compress::serializer::{deserialize_batch, serialize_batch, SerializerKind};
use gpf_formats::fastq::FastqRecord;
use gpf_formats::sam::{SamFlags, SamRecord};
use gpf_formats::Cigar;
use gpf_support::proptest::prelude::*;
use gpf_support::rng::SplitMix64;

fn seq_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            8 => Just(b'A'),
            8 => Just(b'C'),
            8 => Just(b'G'),
            8 => Just(b'T'),
            1 => Just(b'N')
        ],
        0..max_len,
    )
}

fn read_strategy(max_len: usize) -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    seq_strategy(max_len).prop_flat_map(|s| {
        let len = s.len();
        (Just(s), proptest::collection::vec(33u8..=126, len..=len))
    })
}

/// `(value, width)` pairs for bit-stream differentials; widths cover the
/// full 1..=32 range so accumulator splits at every word boundary are hit.
fn bit_runs(max_len: usize) -> impl Strategy<Value = Vec<(u32, u8)>> {
    proptest::collection::vec((any::<u32>(), 1u8..=32), 0..max_len)
}

/// Frequency tables for Huffman differentials: uniform-ish counts (short
/// codes, exercising the one-shot primary table) unioned with steep
/// Fibonacci-like skews whose max code length exceeds the table's 12 index
/// bits, forcing the chained fallback path.
fn freq_table(max_syms: usize) -> impl Strategy<Value = Vec<u64>> {
    let uniform = proptest::collection::vec(1u64..100, 2..max_syms);
    // A Fibonacci frequency ladder over n symbols yields a max code length
    // of about n-1 bits: n >= 14 guarantees codes longer than the 12-bit
    // primary table, n <= 30 stays under the codec's 32-bit length cap.
    let skewed = (14usize..31).prop_map(|n| {
        let mut freqs = vec![0u64; n];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let next = a.saturating_add(b);
            a = b;
            b = next;
        }
        freqs
    });
    prop_oneof![uniform, skewed]
}

proptest! {
    #[test]
    fn word_bitio_matches_scalar_reference(runs in bit_runs(200)) {
        // Writers: the word-level accumulator must emit the byte stream the
        // bit-at-a-time seed implementation produced.
        let mut fast = BitWriter::new();
        let mut slow = RefBitWriter::new();
        for &(v, n) in &runs {
            fast.write_bits(v, n);
            slow.write_bits(v, n);
        }
        prop_assert_eq!(fast.bit_len(), slow.bit_len());
        let fast_bytes = fast.into_bytes();
        let slow_bytes = slow.into_bytes();
        prop_assert_eq!(&fast_bytes, &slow_bytes);

        // Readers: replaying the same widths yields the same values (the
        // writer masked each value to its width) and the same positions.
        let mut fr = BitReader::new(&fast_bytes);
        let mut sr = RefBitReader::new(&slow_bytes);
        for &(v, n) in &runs {
            let expect = if n == 32 { v } else { v & ((1u32 << n) - 1) };
            prop_assert_eq!(fr.read_bits(n).unwrap(), expect);
            prop_assert_eq!(sr.read_bits(n).unwrap(), expect);
            prop_assert_eq!(fr.bit_pos(), sr.bit_pos());
        }
        // Reading past the payload errs on both (padding bits allowing).
        prop_assert_eq!(fr.read_bits(32).is_err(), sr.read_bits(32).is_err());
    }

    #[test]
    fn table_huffman_decode_matches_canonical_walk(
        freqs in freq_table(64),
        picks in proptest::collection::vec(any::<u32>(), 0..300),
    ) {
        let codec = HuffmanCodec::from_frequencies(&freqs);
        // Draw symbols only from the coded alphabet.
        let coded: Vec<u32> = (0..freqs.len() as u32)
            .filter(|&s| codec.code_len(s) > 0)
            .collect();
        prop_assert!(!coded.is_empty(), "every generated frequency is positive");
        let symbols: Vec<u32> =
            picks.iter().map(|p| coded[(*p as usize) % coded.len()]).collect();

        let mut w = BitWriter::new();
        for &s in &symbols {
            codec.encode(s, &mut w).unwrap();
        }
        let bytes = w.into_bytes();

        // Three decoders, one answer: the one-shot table (with chained
        // fallback), the canonical walk over the word reader, and the seed
        // walk over the scalar reader.
        let mut table_r = BitReader::new(&bytes);
        let mut walk_r = BitReader::new(&bytes);
        let mut ref_r = RefBitReader::new(&bytes);
        for &s in &symbols {
            prop_assert_eq!(codec.decode(&mut table_r).unwrap(), s);
            prop_assert_eq!(codec.decode_canonical(&mut walk_r).unwrap(), s);
            let via_ref = codec.decode_with(&mut || ref_r.read_bit()).unwrap();
            prop_assert_eq!(via_ref, s);
        }
    }

    #[test]
    fn field_codec_matches_scalar_reference((seq, qual) in read_strategy(300)) {
        let codec = QualityCodec::default_codec();
        let fast = compress_read_fields(&seq, &qual, &codec).unwrap();
        let slow = compress_read_fields_ref(&seq, &qual, &codec).unwrap();
        prop_assert_eq!(fast.len, slow.len);
        prop_assert_eq!(&fast.packed_seq, &slow.packed_seq);
        prop_assert_eq!(&fast.qual_stream, &slow.qual_stream);
        prop_assert_eq!(&fast.n_quals, &slow.n_quals);
        // And each side's decoder inverts the other's output.
        let (s1, q1) = decompress_read_fields(&slow, &codec).unwrap();
        let (s2, q2) = decompress_read_fields_ref(&fast, &codec).unwrap();
        prop_assert_eq!(&s1, &seq);
        prop_assert_eq!(&q1, &qual);
        prop_assert_eq!(&s2, &seq);
        prop_assert_eq!(&q2, &qual);
    }

    #[test]
    fn field_compression_round_trips((seq, qual) in read_strategy(300)) {
        let codec = QualityCodec::default_codec();
        let c = compress_read_fields(&seq, &qual, &codec).unwrap();
        let (s2, q2) = decompress_read_fields(&c, &codec).unwrap();
        prop_assert_eq!(s2, seq);
        prop_assert_eq!(q2, qual);
    }

    #[test]
    fn packed_sequence_is_quarter_size((seq, qual) in read_strategy(300)) {
        let codec = QualityCodec::default_codec();
        let c = compress_read_fields(&seq, &qual, &codec).unwrap();
        prop_assert_eq!(c.packed_seq.len(), seq.len().div_ceil(4));
    }

    #[test]
    fn quality_codec_round_trips(qual in proptest::collection::vec(33u8..=126, 0..500)) {
        let codec = QualityCodec::default_codec();
        let bytes = codec.encode_to_bytes(&qual).unwrap();
        let mut r = gpf_compress::bitio::BitReader::new(&bytes);
        prop_assert_eq!(codec.decode(&mut r).unwrap(), qual);
    }

    #[test]
    fn fastq_batches_round_trip_under_all_serializers(
        reads in proptest::collection::vec(read_strategy(120), 0..20)
    ) {
        let records: Vec<FastqRecord> = reads
            .into_iter()
            .enumerate()
            .map(|(i, (seq, qual))| FastqRecord::new(format!("r{i}"), &seq, &qual).unwrap())
            .collect();
        for kind in [SerializerKind::JavaSim, SerializerKind::KryoSim, SerializerKind::Gpf] {
            let buf = serialize_batch(kind, &records);
            let out: Vec<FastqRecord> = deserialize_batch(kind, &buf).unwrap();
            prop_assert_eq!(&out, &records);
        }
    }

    #[test]
    fn sam_records_round_trip_under_all_serializers(
        (seq, qual) in read_strategy(150),
        flags in any::<u16>(),
        pos in 0u64..3_000_000_000,
        tlen in any::<i64>(),
    ) {
        let cigar = if seq.is_empty() {
            Cigar::unavailable()
        } else {
            Cigar::from_ops(vec![(seq.len() as u32, gpf_formats::CigarOp::Match)])
        };
        let rec = SamRecord {
            name: "prop".into(),
            flags: SamFlags(flags),
            contig: 2,
            pos,
            mapq: 37,
            cigar,
            mate_contig: u32::MAX,
            mate_pos: 0,
            tlen,
            seq,
            qual,
            read_group: 9,
            edit_distance: 5,
        };
        for kind in [SerializerKind::JavaSim, SerializerKind::KryoSim, SerializerKind::Gpf] {
            let buf = serialize_batch(kind, std::slice::from_ref(&rec));
            let out: Vec<SamRecord> = deserialize_batch(kind, &buf).unwrap();
            prop_assert_eq!(&out[0], &rec);
        }
    }

    #[test]
    fn gpf_never_larger_than_java(reads in proptest::collection::vec(read_strategy(150), 1..10)) {
        let records: Vec<FastqRecord> = reads
            .into_iter()
            .enumerate()
            .map(|(i, (seq, qual))| FastqRecord::new(format!("r{i}"), &seq, &qual).unwrap())
            .collect();
        let java = serialize_batch(SerializerKind::JavaSim, &records).len();
        let gpf = serialize_batch(SerializerKind::Gpf, &records).len();
        prop_assert!(gpf <= java, "gpf {gpf} > java {java}");
    }
}

/// Deterministic corpus of 256 encoded reads for the hostile-bytes
/// properties below: real compressor output, so every corruption lands
/// inside a structurally valid stream rather than random garbage.
fn encoded_corpus() -> Vec<CompressedRead> {
    let codec = QualityCodec::default_codec();
    let mut rng = SplitMix64::new(0xFA17_C0DE);
    (0..256)
        .map(|_| {
            let len = (rng.next_u64() % 180) as usize + 1;
            let seq: Vec<u8> = (0..len)
                .map(|_| {
                    let r = rng.next_u64();
                    if r % 16 == 0 {
                        b'N'
                    } else {
                        b"ACGT"[(r % 4) as usize]
                    }
                })
                .collect();
            let qual: Vec<u8> = (0..len).map(|_| 33 + (rng.next_u64() % 94) as u8).collect();
            compress_read_fields(&seq, &qual, &codec).unwrap()
        })
        .collect()
}

/// Index the mutable byte fields of a read, skipping empty ones so a
/// corruption always has somewhere to land (`packed_seq` is non-empty for
/// every corpus read because `len >= 1`).
fn corruptible_fields(c: &mut CompressedRead) -> Vec<&mut Vec<u8>> {
    [&mut c.packed_seq, &mut c.qual_stream, &mut c.n_quals]
        .into_iter()
        .filter(|f| !f.is_empty())
        .collect()
}

/// A decode of hostile bytes may succeed (a flipped base bit is a valid
/// different read), but an `Ok` must be self-consistent: the advertised
/// read length, never a short or ragged pair.
fn assert_clean_decode(
    c: &CompressedRead,
    res: Result<(Vec<u8>, Vec<u8>), gpf_compress::CodecError>,
) -> Result<(), TestCaseError> {
    if let Ok((seq, qual)) = res {
        prop_assert_eq!(seq.len(), c.len as usize, "Ok decode with wrong seq length");
        prop_assert_eq!(qual.len(), c.len as usize, "Ok decode with wrong qual length");
    }
    Ok(())
}

proptest! {
    #[test]
    fn bit_flip_in_encoded_read_never_panics(pick in any::<u64>(), site in any::<u64>()) {
        let codec = QualityCodec::default_codec();
        let mut corpus = encoded_corpus();
        let c = &mut corpus[(pick % 256) as usize];
        {
            let mut fields = corruptible_fields(c);
            let fi = (site % fields.len() as u64) as usize;
            let field = &mut *fields[fi];
            let bit = (site >> 8) as usize % (field.len() * 8);
            field[bit / 8] ^= 1 << (bit % 8);
        }
        let res = decompress_read_fields(c, &codec);
        assert_clean_decode(c, res)?;
    }

    #[test]
    fn truncated_encoded_read_never_panics(pick in any::<u64>(), site in any::<u64>()) {
        let codec = QualityCodec::default_codec();
        let mut corpus = encoded_corpus();
        let c = &mut corpus[(pick % 256) as usize];
        {
            let mut fields = corruptible_fields(c);
            let fi = (site % fields.len() as u64) as usize;
            let field = &mut *fields[fi];
            let cut = (site >> 8) as usize % field.len();
            field.truncate(cut);
        }
        let res = decompress_read_fields(c, &codec);
        assert_clean_decode(c, res)?;
    }

    #[test]
    fn corrupted_length_field_is_rejected_cleanly(pick in any::<u64>(), delta in any::<u32>()) {
        // A hostile `len` must not drive an unchecked pre-size allocation:
        // the decoder bounds-checks against the packed payload before any
        // reserve, so even `len = u32::MAX` errs instead of OOMing.
        let codec = QualityCodec::default_codec();
        let mut corpus = encoded_corpus();
        let c = &mut corpus[(pick % 256) as usize];
        c.len ^= delta | 1;
        let res = decompress_read_fields(c, &codec);
        assert_clean_decode(c, res)?;
    }

    #[test]
    fn truncated_batch_buffer_errors_cleanly(
        records in proptest::collection::vec(
            (
                any::<u64>(),
                proptest::collection::vec(97u8..=122, 0..12)
                    .prop_map(|b| String::from_utf8(b).unwrap()),
            ),
            1..16,
        ),
        cut_sel in any::<u64>(),
    ) {
        for kind in [SerializerKind::JavaSim, SerializerKind::KryoSim, SerializerKind::Gpf] {
            let buf = serialize_batch(kind, &records);
            let cut = (cut_sel % buf.len() as u64) as usize;
            let res: Result<Vec<(u64, String)>, _> = deserialize_batch(kind, &buf[..cut]);
            prop_assert!(
                res.is_err(),
                "{kind:?}: truncation to {cut}/{} bytes decoded Ok",
                buf.len()
            );
        }
    }
}
