//! Explorer self-tests (satellite): determinism, exhaustive completeness,
//! and no false positives on a correctly synchronized message pass.
//!
//! Only meaningful under the instrumented build:
//! `RUSTFLAGS="--cfg gpf_check" cargo test -p gpf-check`.
#![cfg(gpf_check)]

use std::collections::HashSet;
use std::sync::Mutex;

use gpf_check::explore::Explorer;
use gpf_check::shim::atomic::{AtomicU64, Ordering};
use gpf_check::shim::cell::RaceCell;
use gpf_check::shim::thread as chk_thread;

/// Exhaustive mode enumerates the model's full interleaving set, each
/// schedule exactly once.
///
/// Model: two peer threads, three `fetch_add(1)` steps each on one shared
/// atomic. Each thread contributes 4 scheduler steps (3 RMWs plus its
/// termination step), so the full interleaving set has C(8,4) = 70
/// members; distinct recorded decision paths biject onto interleavings
/// (the first divergence between two interleavings is a recorded choice).
/// The 3-subsets of ranks {0..5} taken by thread A across the RMWs must
/// then cover all C(6,3) = 20 possibilities.
#[test]
fn exhaustive_enumerates_full_interleaving_set() {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    // Rank triples are taken modulo 6: every schedule completes (no
    // failures, no aborts), so SEQ advances by exactly 6 per schedule and
    // the static's persistence across schedules cancels out.
    let triples: Mutex<Vec<[u64; 3]>> = Mutex::new(Vec::new());
    let body_a = || {
        let mut t = [0u64; 3];
        for slot in t.iter_mut() {
            *slot = SEQ.fetch_add(1, Ordering::Relaxed) % 6;
        }
        triples.lock().unwrap().push(t);
    };
    let body_b = || {
        for _ in 0..3 {
            SEQ.fetch_add(1, Ordering::Relaxed);
        }
    };
    let report = Explorer::exhaustive(64)
        .check_threads("exhaustive_completeness", &[&body_a, &body_b])
        .expect("a race-free counter model must pass");
    assert!(report.complete, "the bounded DFS must exhaust this model");
    assert_eq!(report.schedules, 70, "C(8,4) interleavings of 4+4 steps");
    let seen = triples.lock().unwrap();
    assert_eq!(seen.len(), 70);
    let distinct: HashSet<[u64; 3]> = seen.iter().copied().collect();
    assert_eq!(distinct.len(), 20, "C(6,3) rank triples for thread A");
}

/// Identical seeds must produce byte-identical schedules: the observable
/// per-schedule op orders of two runs with the same base seed are equal,
/// and a different seed produces a different sequence (sanity that the
/// seed actually steers scheduling).
#[test]
fn identical_seeds_replay_identical_schedules() {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let run = |seed: u64| -> Vec<[u64; 3]> {
        let triples: Mutex<Vec<[u64; 3]>> = Mutex::new(Vec::new());
        let body_a = || {
            let mut t = [0u64; 3];
            for slot in t.iter_mut() {
                *slot = SEQ.fetch_add(1, Ordering::Relaxed) % 6;
            }
            triples.lock().unwrap().push(t);
        };
        let body_b = || {
            for _ in 0..3 {
                SEQ.fetch_add(1, Ordering::Relaxed);
            }
        };
        Explorer::random(seed, 60)
            .check_threads("seed_determinism", &[&body_a, &body_b])
            .expect("a race-free counter model must pass");
        triples.into_inner().unwrap()
    };
    let first = run(0x5EED_CAFE);
    let second = run(0x5EED_CAFE);
    assert_eq!(first, second, "same seed, same schedules, same op orders");
    let other = run(0x0DD_5EED);
    assert_ne!(first, other, "a different seed must explore differently");
}

/// A correct release/acquire message pass must never be flagged: no data
/// race on the payload cell, and an acquire load observing the flag must
/// also observe the payload write.
#[test]
fn message_pass_has_no_false_positive() {
    let report = Explorer::exhaustive(64)
        .check("message_pass_release_acquire", || {
            let flag = AtomicU64::new(0);
            let data = RaceCell::new(0u64);
            chk_thread::scope(|s| {
                s.spawn(|| {
                    data.set(42);
                    flag.store(1, Ordering::Release);
                });
                s.spawn(|| {
                    if flag.load(Ordering::Acquire) == 1 {
                        assert_eq!(data.get(), 42, "acquire must publish the payload");
                    }
                });
            });
        })
        .unwrap_or_else(|f| panic!("false positive: {f}"));
    assert!(report.complete);
    assert!(report.schedules > 1, "exploration must actually branch");
}

/// Replay tokens parse back into the decision sources they describe.
#[test]
fn replay_tokens_round_trip() {
    use gpf_check::explore::parse_replay;
    use gpf_check::rt::DecisionSource;
    match parse_replay("seed:00000000deadbeef") {
        Some(DecisionSource::Random(s)) => assert_eq!(s, 0xdead_beef),
        other => panic!("bad parse: {other:?}"),
    }
    match parse_replay("path:1.0.2") {
        Some(DecisionSource::Prefix(p)) => assert_eq!(p, vec![1, 0, 2]),
        other => panic!("bad parse: {other:?}"),
    }
    match parse_replay("path:") {
        Some(DecisionSource::Prefix(p)) => assert!(p.is_empty()),
        other => panic!("bad parse: {other:?}"),
    }
    assert!(parse_replay("garbage").is_none());
}
