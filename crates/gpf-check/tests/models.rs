//! Model checks over the REAL workspace components (tentpole acceptance):
//! the work-stealing pool, the sync locks, the trace ring, and the counter
//! registry run unmodified under the schedule explorer, and every declared
//! invariant holds across thousands of schedules.
//!
//! These are the other half of the battery: `battery.rs` proves the checker
//! *can* find seeded bugs; this file proves the shipped code *has* none of
//! them (within the explored schedule set).
//!
//! Run with `RUSTFLAGS="--cfg gpf_check" cargo test -p gpf-check`.
//! `GPF_CHECK_SCHEDULES=<n>` overrides the per-model schedule budget.
#![cfg(gpf_check)]

use std::sync::Arc;

use gpf_check::explore::{Explorer, Report};
use gpf_check::shim::thread as chk_thread;
use gpf_support::sync::{Mutex, RwLock};
use gpf_trace::{Category, Event, EventKind, TraceLog};

/// Default schedule budget per random-mode model (the acceptance bar).
const SCHEDULES: usize = 10_000;

fn pass(result: Result<Report, gpf_check::explore::Failure>, name: &str) -> Report {
    match result {
        Ok(report) => report,
        Err(f) => panic!("real component '{name}' failed model check:\n{f}"),
    }
}

fn ev(n: u64) -> Event {
    Event {
        kind: EventKind::Instant,
        name: Arc::from(format!("e{n}")),
        cat: Category::Other,
        phase: Arc::from(""),
        ts_ns: n,
        tid: 0,
        id: 0,
        parent: 0,
        counters: Vec::new(),
    }
}

/// Pool: `map_range_chunked` preserves input order and claims every chunk
/// exactly once (the internal `expect` fires on a double/missed claim) no
/// matter how the workers' counter bumps interleave.
#[test]
fn model_par_pool_order_and_coverage() {
    // Pin the worker count so the model's thread set is schedule-independent.
    std::env::set_var("GPF_PAR_THREADS", "2");
    let model = || {
        let out = gpf_support::par::map_range_chunked(4, 1, |i| i * 10 + 1);
        assert_eq!(out, vec![1, 11, 21, 31], "order must survive work stealing");
    };
    let report = pass(
        Explorer::exhaustive(64).check("model_par_pool_exhaustive", model),
        "par pool (exhaustive)",
    );
    assert!(report.complete, "the 2-worker 4-chunk pool must be enumerable");
    assert!(report.schedules > 1, "exploration must actually branch");
    pass(
        Explorer::random(0x9AF_F00D, SCHEDULES).check("model_par_pool", model),
        "par pool",
    );
}

/// Locks: increments under `sync::Mutex` are never lost, and `RwLock`
/// readers only ever observe pair-consistent state.
#[test]
fn model_sync_locks_exclusion_and_consistency() {
    let mutex_model = || {
        let m = Mutex::new(0u64);
        chk_thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..2 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4, "mutex increments must not be lost");
    };
    let report = pass(
        Explorer::exhaustive(64).check("model_mutex_exhaustive", mutex_model),
        "mutex (exhaustive)",
    );
    assert!(report.complete);
    pass(Explorer::random(0x10C_C0DE, SCHEDULES).check("model_mutex", mutex_model), "mutex");

    let rw_model = || {
        let rw = RwLock::new((0u64, 0u64));
        chk_thread::scope(|s| {
            s.spawn(|| {
                for i in 1..=2u64 {
                    let mut g = rw.write();
                    g.0 = i;
                    g.1 = i;
                }
            });
            s.spawn(|| {
                for _ in 0..2 {
                    let g = rw.read();
                    assert_eq!(g.0, g.1, "readers must never see a torn pair");
                }
            });
        });
    };
    pass(Explorer::random(0x5EE0_0B57, SCHEDULES).check("model_rwlock", rw_model), "rwlock");
}

/// Ring: under concurrent pushers the single-lock [`TraceLog::stats`]
/// snapshot balances (`held + dropped == pushed`) at every observation
/// point, including mid-flight — the exact tear the old separate
/// `len()`/`dropped()` reads allowed.
#[test]
fn model_ring_stats_balance() {
    let model = || {
        let log = TraceLog::with_capacity(2);
        chk_thread::scope(|s| {
            s.spawn(|| {
                log.push(ev(1));
                log.push(ev(2));
            });
            s.spawn(|| log.push(ev(3)));
            s.spawn(|| {
                // Mid-flight observer: whatever prefix of the pushes has
                // landed, the snapshot must balance.
                let snap = log.stats();
                assert_eq!(
                    snap.held as u64 + snap.dropped,
                    snap.pushed,
                    "stats snapshot tore: {snap:?}"
                );
                assert!(snap.pushed <= 3);
            });
        });
        let end = log.stats();
        assert_eq!(end.pushed, 3);
        assert_eq!(end.held, 2, "capacity-2 ring holds the newest two");
        assert_eq!(end.dropped, 1, "exactly one overflow drop");
        let drained = log.drain();
        assert_eq!(drained.events.len(), 2);
        assert_eq!(log.stats(), gpf_trace::RingStats { held: 0, dropped: 0, pushed: 0 });
    };
    pass(Explorer::random(0x0411_0111, SCHEDULES).check("model_ring", model), "ring");
}

/// Counters: concurrent `add`s on one registry counter are all visible
/// after the scope join (the synchronizing edge the `// ordering:` comments
/// in `counters.rs` lean on), and histogram merge preserves every sample.
#[test]
fn model_counters_join_publishes_all_adds() {
    let model = || {
        // The registry is process-global and persists across schedules, so
        // the invariant is phrased over per-schedule deltas.
        let c = gpf_trace::counter("check.model.counter");
        let before = c.get();
        chk_thread::scope(|s| {
            s.spawn(|| c.add(2));
            s.spawn(|| {
                c.add(1);
                c.add(1);
            });
        });
        assert_eq!(c.get(), before + 4, "the join must publish every add");
    };
    pass(Explorer::random(0xC0_117E5, SCHEDULES).check("model_counters", model), "counters");

    let hist_model = || {
        let h = gpf_trace::histogram("check.model.hist");
        let before = h.count();
        chk_thread::scope(|s| {
            s.spawn(|| {
                let mut local = gpf_trace::LocalHistogram::new();
                local.record(1);
                local.record(1024);
                h.merge(&local);
            });
            s.spawn(|| h.record(7));
        });
        assert_eq!(h.count(), before + 3, "merge and record must not lose samples");
    };
    pass(Explorer::random(0x0B15_7067, SCHEDULES).check("model_histogram", hist_model), "histogram");
}
