//! Model checks over the REAL workspace components (tentpole acceptance):
//! the work-stealing pool, the sync locks, the trace ring, the counter
//! registry, and the tracking-allocator accounting run unmodified under
//! the schedule explorer, and every declared invariant holds across
//! thousands of schedules.
//!
//! These are the other half of the battery: `battery.rs` proves the checker
//! *can* find seeded bugs; this file proves the shipped code *has* none of
//! them (within the explored schedule set).
//!
//! Run with `RUSTFLAGS="--cfg gpf_check" cargo test -p gpf-check`.
//! `GPF_CHECK_SCHEDULES=<n>` overrides the per-model schedule budget.
#![cfg(gpf_check)]

use std::sync::Arc;

use gpf_check::explore::{Explorer, Report};
use gpf_check::shim::thread as chk_thread;
use gpf_support::sync::{Mutex, RwLock};
use gpf_trace::alloc::{self, AllocTag};
use gpf_trace::{Category, Event, EventKind, TraceLog};

/// Default schedule budget per random-mode model (the acceptance bar).
const SCHEDULES: usize = 10_000;

fn pass(result: Result<Report, gpf_check::explore::Failure>, name: &str) -> Report {
    match result {
        Ok(report) => report,
        Err(f) => panic!("real component '{name}' failed model check:\n{f}"),
    }
}

fn ev(n: u64) -> Event {
    Event {
        kind: EventKind::Instant,
        name: Arc::from(format!("e{n}")),
        cat: Category::Other,
        phase: Arc::from(""),
        ts_ns: n,
        tid: 0,
        id: 0,
        parent: 0,
        counters: Vec::new(),
    }
}

/// Pool: `map_range_chunked` preserves input order and claims every chunk
/// exactly once (the internal `expect` fires on a double/missed claim) no
/// matter how the workers' counter bumps interleave.
#[test]
fn model_par_pool_order_and_coverage() {
    // Pin the worker count so the model's thread set is schedule-independent.
    std::env::set_var("GPF_PAR_THREADS", "2");
    let model = || {
        let out = gpf_support::par::map_range_chunked(4, 1, |i| i * 10 + 1);
        assert_eq!(out, vec![1, 11, 21, 31], "order must survive work stealing");
    };
    let report = pass(
        Explorer::exhaustive(64).check("model_par_pool_exhaustive", model),
        "par pool (exhaustive)",
    );
    assert!(report.complete, "the 2-worker 4-chunk pool must be enumerable");
    assert!(report.schedules > 1, "exploration must actually branch");
    pass(
        Explorer::random(0x9AF_F00D, SCHEDULES).check("model_par_pool", model),
        "par pool",
    );
}

/// Locks: increments under `sync::Mutex` are never lost, and `RwLock`
/// readers only ever observe pair-consistent state.
#[test]
fn model_sync_locks_exclusion_and_consistency() {
    let mutex_model = || {
        let m = Mutex::new(0u64);
        chk_thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..2 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4, "mutex increments must not be lost");
    };
    let report = pass(
        Explorer::exhaustive(64).check("model_mutex_exhaustive", mutex_model),
        "mutex (exhaustive)",
    );
    assert!(report.complete);
    pass(Explorer::random(0x10C_C0DE, SCHEDULES).check("model_mutex", mutex_model), "mutex");

    let rw_model = || {
        let rw = RwLock::new((0u64, 0u64));
        chk_thread::scope(|s| {
            s.spawn(|| {
                for i in 1..=2u64 {
                    let mut g = rw.write();
                    g.0 = i;
                    g.1 = i;
                }
            });
            s.spawn(|| {
                for _ in 0..2 {
                    let g = rw.read();
                    assert_eq!(g.0, g.1, "readers must never see a torn pair");
                }
            });
        });
    };
    pass(Explorer::random(0x5EE0_0B57, SCHEDULES).check("model_rwlock", rw_model), "rwlock");
}

/// Ring: under concurrent pushers the single-lock [`TraceLog::stats`]
/// snapshot balances (`held + dropped == pushed`) at every observation
/// point, including mid-flight — the exact tear the old separate
/// `len()`/`dropped()` reads allowed.
#[test]
fn model_ring_stats_balance() {
    let model = || {
        let log = TraceLog::with_capacity(2);
        chk_thread::scope(|s| {
            s.spawn(|| {
                log.push(ev(1));
                log.push(ev(2));
            });
            s.spawn(|| log.push(ev(3)));
            s.spawn(|| {
                // Mid-flight observer: whatever prefix of the pushes has
                // landed, the snapshot must balance.
                let snap = log.stats();
                assert_eq!(
                    snap.held as u64 + snap.dropped,
                    snap.pushed,
                    "stats snapshot tore: {snap:?}"
                );
                assert!(snap.pushed <= 3);
            });
        });
        let end = log.stats();
        assert_eq!(end.pushed, 3);
        assert_eq!(end.held, 2, "capacity-2 ring holds the newest two");
        assert_eq!(end.dropped, 1, "exactly one overflow drop");
        let drained = log.drain();
        assert_eq!(drained.events.len(), 2);
        assert_eq!(log.stats(), gpf_trace::RingStats { held: 0, dropped: 0, pushed: 0 });
    };
    pass(Explorer::random(0x0411_0111, SCHEDULES).check("model_ring", model), "ring");
}

/// Counters: concurrent `add`s on one registry counter are all visible
/// after the scope join (the synchronizing edge the `// ordering:` comments
/// in `counters.rs` lean on), and histogram merge preserves every sample.
#[test]
fn model_counters_join_publishes_all_adds() {
    let model = || {
        // The registry is process-global and persists across schedules, so
        // the invariant is phrased over per-schedule deltas.
        let c = gpf_trace::counter("check.model.counter");
        let before = c.get();
        chk_thread::scope(|s| {
            s.spawn(|| c.add(2));
            s.spawn(|| {
                c.add(1);
                c.add(1);
            });
        });
        assert_eq!(c.get(), before + 4, "the join must publish every add");
    };
    pass(Explorer::random(0xC0_117E5, SCHEDULES).check("model_counters", model), "counters");

    let hist_model = || {
        let h = gpf_trace::histogram("check.model.hist");
        let before = h.count();
        chk_thread::scope(|s| {
            s.spawn(|| {
                let mut local = gpf_trace::LocalHistogram::new();
                local.record(1);
                local.record(1024);
                h.merge(&local);
            });
            s.spawn(|| h.record(7));
        });
        assert_eq!(h.count(), before + 3, "merge and record must not lose samples");
    };
    pass(Explorer::random(0x0B15_7067, SCHEDULES).check("model_histogram", hist_model), "histogram");
}

/// Allocator gauges: balanced `note_alloc`/`note_dealloc` pairs on
/// concurrent threads return the global live gauge to baseline, the window
/// peak observes between one and two concurrent allocations, and the
/// flushed totals reach the registry exactly once — under every explored
/// interleaving of the pending-delta publishes. (The `#[global_allocator]`
/// static is not installed under gpf_check; the models drive the
/// accounting machinery directly, which is why `note_*` are public and
/// unconditional.)
#[test]
fn model_alloc_gauge_balance() {
    // 128 KiB exceeds the 64 KiB flush quantum, so every note publishes to
    // the global gauges immediately and the schedules interleave the gauge
    // RMWs themselves rather than thread-local Cell arithmetic.
    const SZ: usize = 128 * 1024;
    let model = || {
        // The gauges are process-global; models run single-threaded at the
        // harness level (ci uses --test-threads=1), so a reset isolates
        // each schedule.
        alloc::reset_gauges();
        let allocated = gpf_trace::counter(gpf_trace::names::HEAP_ALLOC_BYTES);
        let freed = gpf_trace::counter(gpf_trace::names::HEAP_FREED_BYTES);
        let (a0, f0) = (allocated.get(), freed.get());
        chk_thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    alloc::note_alloc(SZ);
                    alloc::note_dealloc(SZ);
                    // ThreadHeap's Drop flush is disabled under gpf_check
                    // (it would re-enter the scheduler during teardown);
                    // models publish explicitly instead.
                    alloc::flush_thread_stats();
                });
            }
        });
        assert_eq!(alloc::live_bytes(), 0, "balanced pairs must return live to baseline");
        let peak = alloc::take_peak();
        assert!(
            (SZ as u64..=2 * SZ as u64).contains(&peak),
            "peak must observe one to two concurrent allocations, got {peak}"
        );
        assert_eq!(allocated.get() - a0, 2 * SZ as u64, "alloc totals must flush exactly once");
        assert_eq!(freed.get() - f0, 2 * SZ as u64, "free totals must flush exactly once");
    };
    pass(Explorer::random(0xA110_CA7E, SCHEDULES).check("model_alloc_gauges", model), "alloc gauges");
}

/// Attribution scopes: bytes allocated under a tag scope land on exactly
/// that tag's registry counter (innermost scope wins), and the
/// outermost-scope-exit flush publishes once per thread regardless of how
/// the two threads' registry adds interleave.
#[test]
fn model_alloc_scope_attribution() {
    let model = || {
        let task = gpf_trace::counter(gpf_trace::names::HEAP_TAG_TASK);
        let serde = gpf_trace::counter(gpf_trace::names::HEAP_TAG_SERDE);
        let shuffle = gpf_trace::counter(gpf_trace::names::HEAP_TAG_SHUFFLE);
        let (t0, se0, sh0) = (task.get(), serde.get(), shuffle.get());
        chk_thread::scope(|s| {
            s.spawn(|| {
                let outer = alloc::scope(AllocTag::Serde);
                alloc::note_alloc(256);
                {
                    let inner = alloc::scope(AllocTag::Task);
                    alloc::note_alloc(64);
                    alloc::note_dealloc(64);
                    drop(inner);
                }
                alloc::note_dealloc(256);
                // The outermost drop flushes this thread's tag bytes.
                drop(outer);
            });
            s.spawn(|| {
                let scope = alloc::scope(AllocTag::Shuffle);
                alloc::note_alloc(512);
                alloc::note_dealloc(512);
                drop(scope);
            });
        });
        assert_eq!(task.get() - t0, 64, "the inner scope must win attribution");
        assert_eq!(serde.get() - se0, 256, "outer-scope bytes must not leak to the inner tag");
        assert_eq!(shuffle.get() - sh0, 512, "concurrent scopes must not cross-charge");
    };
    pass(
        Explorer::random(0x7A65_CA7E, SCHEDULES).check("model_alloc_scopes", model),
        "alloc scopes",
    );
}
