//! Detection-power battery: deliberately broken concurrency variants the
//! checker MUST flag. Each case is a known bug class seeded into a small
//! model; a passing run here means the checker failed to find a planted
//! bug and is itself broken. Every failure's replay token is re-run and
//! must reproduce the identical verdict (kind and message byte-for-byte).
//!
//! Run with `RUSTFLAGS="--cfg gpf_check" cargo test -p gpf-check`.
#![cfg(gpf_check)]

use gpf_check::explore::{Explorer, Failure};
use gpf_check::rt::FailureKind;
use gpf_check::shim::atomic::{AtomicBool, AtomicU64, Ordering};
use gpf_check::shim::cell::RaceCell;
use gpf_check::shim::sync::{Condvar, Mutex};
use gpf_check::shim::thread as chk_thread;

/// Flag the bug, then prove the printed token replays the exact schedule.
fn expect_bug<F>(explorer: Explorer, name: &str, kind: FailureKind, model: F) -> Failure
where
    F: Fn(),
{
    let failure = explorer
        .clone()
        .check(name, &model)
        .expect_err("the checker must flag this seeded bug");
    assert_eq!(failure.kind, kind, "wrong verdict for {name}: {failure}");
    assert!(!failure.replay.is_empty());
    let replayed = explorer
        .with_replay(&failure.replay)
        .expect("failure tokens must parse")
        .check(name, &model)
        .expect_err("replaying the failing schedule must fail again");
    assert_eq!(replayed.kind, failure.kind, "replay diverged for {name}");
    assert_eq!(replayed.message, failure.message, "replay not byte-identical for {name}");
    failure
}

/// Bug 1 — consumer loads the ready flag with `Relaxed` where `Acquire`
/// is required: no happens-before edge to the producer's payload write,
/// so reading the payload races it.
#[test]
fn bug_relaxed_consumer_load_is_flagged() {
    expect_bug(
        Explorer::exhaustive(64),
        "bug_relaxed_consumer_load",
        FailureKind::DataRace,
        || {
            let flag = AtomicU64::new(0);
            let data = RaceCell::new(0u64);
            chk_thread::scope(|s| {
                s.spawn(|| {
                    data.set(7);
                    flag.store(1, Ordering::Release);
                });
                s.spawn(|| {
                    // BUG: Relaxed drops the acquire edge the publish needs.
                    if flag.load(Ordering::Relaxed) == 1 {
                        let _ = data.get();
                    }
                });
            });
        },
    );
}

/// Bug 2 — producer publishes the flag with `Relaxed` where `Release` is
/// required: even an acquire load cannot synchronize with it.
#[test]
fn bug_relaxed_producer_store_is_flagged() {
    expect_bug(
        Explorer::exhaustive(64),
        "bug_relaxed_producer_store",
        FailureKind::DataRace,
        || {
            let flag = AtomicU64::new(0);
            let data = RaceCell::new(0u64);
            chk_thread::scope(|s| {
                s.spawn(|| {
                    data.set(7);
                    // BUG: Relaxed drops the release edge the publish needs.
                    flag.store(1, Ordering::Relaxed);
                });
                s.spawn(|| {
                    if flag.load(Ordering::Acquire) == 1 {
                        let _ = data.get();
                    }
                });
            });
        },
    );
}

/// Bug 3 — classic lost wakeup: the consumer tests the ready flag
/// *outside* the mutex, so the producer's notify can land in the window
/// between the test and the park, leaving the consumer parked forever.
#[test]
fn bug_check_outside_lock_loses_wakeup() {
    expect_bug(
        Explorer::exhaustive(64),
        "bug_lost_wakeup",
        FailureKind::LostWakeup,
        || {
            let ready = AtomicBool::new(false);
            let m = Mutex::new(());
            let cv = Condvar::new();
            chk_thread::scope(|s| {
                s.spawn(|| {
                    ready.store(true, Ordering::SeqCst);
                    let _g = m.lock();
                    cv.notify_one();
                });
                s.spawn(|| {
                    // BUG: the test happens before taking the lock, so the
                    // notify can fire before this thread parks.
                    if !ready.load(Ordering::SeqCst) {
                        let g = m.lock();
                        let _g = cv.wait(g);
                    }
                });
            });
        },
    );
}

/// Bug 4 — AB/BA lock ordering deadlock, caught by the lock-wait cycle
/// walk the moment the second thread parks.
#[test]
fn bug_lock_order_inversion_deadlocks() {
    expect_bug(
        Explorer::exhaustive(64),
        "bug_ab_ba_deadlock",
        FailureKind::Deadlock,
        || {
            let a = Mutex::new(0u64);
            let b = Mutex::new(0u64);
            chk_thread::scope(|s| {
                s.spawn(|| {
                    let _ga = a.lock();
                    let _gb = b.lock();
                });
                s.spawn(|| {
                    // BUG: opposite acquisition order to the other thread.
                    let _gb = b.lock();
                    let _ga = a.lock();
                });
            });
        },
    );
}

/// Bug 5 — lost update: increment via separate load and store instead of
/// `fetch_add`, so a preemption between them drops one increment.
#[test]
fn bug_load_then_store_increment_loses_updates() {
    expect_bug(
        Explorer::exhaustive(64),
        "bug_nonatomic_increment",
        FailureKind::ModelPanic,
        || {
            let counter = AtomicU64::new(0);
            chk_thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        // BUG: read-modify-write torn into two operations.
                        let v = counter.load(Ordering::SeqCst);
                        counter.store(v + 1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::SeqCst), 2, "an increment was lost");
        },
    );
}

/// Bug 6 — drop-accounting drift, modeled on the trace ring: events are
/// guarded by the ring mutex but the dropped counter is bumped with a
/// separate load+store, so two concurrent pushers under-count drops and
/// `held + dropped != pushed`.
#[test]
fn bug_ring_drop_accounting_drifts() {
    expect_bug(
        Explorer::exhaustive(64),
        "bug_ring_drop_accounting",
        FailureKind::ModelPanic,
        || {
            const CAP: usize = 2;
            let ring: Mutex<Vec<u64>> = Mutex::new(Vec::new());
            let dropped = AtomicU64::new(0);
            let push = |v: u64| {
                let mut g = ring.lock();
                g.push(v);
                let evicted = g.len() > CAP;
                if evicted {
                    g.remove(0);
                }
                drop(g);
                if evicted {
                    // BUG: counter updated outside the lock, non-atomically,
                    // so two concurrent evictors can both read the same value
                    // and one increment is lost.
                    let d = dropped.load(Ordering::SeqCst);
                    dropped.store(d + 1, Ordering::SeqCst);
                }
            };
            chk_thread::scope(|s| {
                s.spawn(|| {
                    push(1);
                    push(2);
                });
                s.spawn(|| {
                    push(3);
                    push(4);
                });
            });
            let held = ring.lock().len() as u64;
            let lost = dropped.load(Ordering::SeqCst);
            assert_eq!(held + lost, 4, "drop accounting drifted");
        },
    );
}

/// Bug 7 — bare unsynchronized writes to shared stats: two threads write
/// a `RaceCell` with no lock and no ordering at all.
#[test]
fn bug_unsynchronized_stats_write_is_flagged() {
    expect_bug(
        Explorer::exhaustive(64),
        "bug_unsync_stats",
        FailureKind::DataRace,
        || {
            let stats = RaceCell::new(0u64);
            chk_thread::scope(|s| {
                s.spawn(|| stats.set(stats.get() + 1));
                s.spawn(|| stats.set(stats.get() + 1));
            });
        },
    );
}
