//! The shim layer: the only concurrency primitives workspace code may use
//! (enforced by gpf-lint's `concurrency-boundary` rule).
//!
//! | module | normal build | `--cfg gpf_check` |
//! |---|---|---|
//! | [`atomic`] | `std::sync::atomic` aliases | store-history atomics with ordering-aware visibility |
//! | [`sync`] | non-poisoning `std::sync` wrappers | scheduler-mediated locks with happens-before edges |
//! | [`thread`] | `std::thread` spawn/scope | virtual threads under the cooperative scheduler |
//! | [`cell`] | transparent `UnsafeCell` wrapper | vector-clock race-checked shared cell |
//!
//! `gpf-support` re-exports this module as `gpf_support::chk`.

pub mod atomic;
pub mod cell;
pub mod sync;
pub mod thread;

/// A scheduling point with no memory effect. No-op in normal builds; under
/// `gpf_check` it lets the explorer preempt here (useful in spin loops so
/// random schedules make progress).
#[inline]
pub fn yield_point() {
    #[cfg(gpf_check)]
    crate::rt::yield_point();
}
