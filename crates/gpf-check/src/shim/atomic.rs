//! Shimmed atomics.
//!
//! Normal builds: plain re-exports of `std::sync::atomic` — zero cost.
//!
//! Under `gpf_check`, each atomic keeps its authoritative latest value in
//! an inner std atomic (so pass-through access from non-model threads and
//! post-schedule reads stay coherent) and mirrors every model-thread
//! access into the scheduler's per-location store history. Loads choose
//! which visible store to observe (a `Relaxed`/`Acquire` load may see a
//! stale value unless a happens-before edge has raised this thread's
//! visibility floor); RMWs always read the newest store per the C++
//! coherence rule.

#[cfg(not(gpf_check))]
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

#[cfg(gpf_check)]
pub use checked::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
#[cfg(gpf_check)]
pub use std::sync::atomic::Ordering;

#[cfg(gpf_check)]
mod checked {
    use super::Ordering;
    use crate::rt::{self, LocId};

    macro_rules! chk_atomic_common {
        ($name:ident, $std:ty, $t:ty, $to:expr, $from:expr) => {
            /// Instrumented drop-in for the std atomic of the same name.
            #[derive(Debug, Default)]
            pub struct $name {
                v: $std,
                id: LocId,
            }

            impl $name {
                /// Construct (usable in `const`/`static` position).
                pub const fn new(v: $t) -> Self {
                    Self { v: <$std>::new(v), id: LocId::new() }
                }

                /// Ordering-aware load: under a model, the scheduler picks
                /// which visible store this thread observes.
                pub fn load(&self, order: Ordering) -> $t {
                    match rt::atomic_load(&self.id, order, &|| ($to)(self.v.load(Ordering::SeqCst)))
                    {
                        Some(bits) => ($from)(bits),
                        None => self.v.load(order),
                    }
                }

                /// Ordering-aware store (appends to the location's
                /// modification order under a model).
                pub fn store(&self, val: $t, order: Ordering) {
                    let bits = ($to)(val);
                    // The apply closure returns the previous mirror value so
                    // rt can seed the location's initial store lazily.
                    let applied = rt::atomic_store(&self.id, order, bits, &|| {
                        ($to)(self.v.swap(val, Ordering::SeqCst))
                    });
                    if !applied {
                        self.v.store(val, order);
                    }
                }

                /// Swap, modeled as an RMW on the newest store.
                pub fn swap(&self, val: $t, order: Ordering) -> $t {
                    let bits = ($to)(val);
                    match rt::atomic_rmw(
                        &self.id,
                        order,
                        &|| ($to)(self.v.load(Ordering::SeqCst)),
                        &|_| bits,
                        &|new| self.v.store(($from)(new), Ordering::SeqCst),
                    ) {
                        Some(old) => ($from)(old),
                        None => self.v.swap(val, order),
                    }
                }

                /// Compare-exchange against the newest store.
                pub fn compare_exchange(
                    &self,
                    current: $t,
                    new: $t,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$t, $t> {
                    let cur_bits = ($to)(current);
                    let new_bits = ($to)(new);
                    match rt::atomic_cx(
                        &self.id,
                        success,
                        failure,
                        cur_bits,
                        new_bits,
                        &|| ($to)(self.v.load(Ordering::SeqCst)),
                        &|v| self.v.store(($from)(v), Ordering::SeqCst),
                    ) {
                        Some(Ok(old)) => Ok(($from)(old)),
                        Some(Err(old)) => Err(($from)(old)),
                        None => self.v.compare_exchange(current, new, success, failure),
                    }
                }

                /// Mutable access without synchronization (exclusive borrow).
                pub fn get_mut(&mut self) -> &mut $t {
                    self.v.get_mut()
                }

                /// Consume, returning the inner value.
                pub fn into_inner(self) -> $t {
                    self.v.into_inner()
                }
            }
        };
    }

    macro_rules! chk_atomic_int {
        ($name:ident, $std:ty, $t:ty) => {
            chk_atomic_common!($name, $std, $t, |v: $t| v as u64, |b: u64| b as $t);

            impl $name {
                /// Fetch-add, modeled as an RMW on the newest store.
                pub fn fetch_add(&self, val: $t, order: Ordering) -> $t {
                    match rt::atomic_rmw(
                        &self.id,
                        order,
                        &|| self.v.load(Ordering::SeqCst) as u64,
                        &|old| (old as $t).wrapping_add(val) as u64,
                        &|new| self.v.store(new as $t, Ordering::SeqCst),
                    ) {
                        Some(old) => old as $t,
                        None => self.v.fetch_add(val, order),
                    }
                }

                /// Fetch-sub, modeled as an RMW on the newest store.
                pub fn fetch_sub(&self, val: $t, order: Ordering) -> $t {
                    match rt::atomic_rmw(
                        &self.id,
                        order,
                        &|| self.v.load(Ordering::SeqCst) as u64,
                        &|old| (old as $t).wrapping_sub(val) as u64,
                        &|new| self.v.store(new as $t, Ordering::SeqCst),
                    ) {
                        Some(old) => old as $t,
                        None => self.v.fetch_sub(val, order),
                    }
                }

                /// Fetch-max, modeled as an RMW on the newest store.
                pub fn fetch_max(&self, val: $t, order: Ordering) -> $t {
                    match rt::atomic_rmw(
                        &self.id,
                        order,
                        &|| self.v.load(Ordering::SeqCst) as u64,
                        &|old| (old as $t).max(val) as u64,
                        &|new| self.v.store(new as $t, Ordering::SeqCst),
                    ) {
                        Some(old) => old as $t,
                        None => self.v.fetch_max(val, order),
                    }
                }
            }
        };
    }

    chk_atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    chk_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    chk_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    chk_atomic_common!(
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool,
        |v: bool| v as u64,
        |b: u64| b != 0
    );
}
