//! `RaceCell`: shared non-atomic state visible to the race detector.
//!
//! In a normal build this is a transparent `UnsafeCell` wrapper — callers
//! promise external synchronization (a shim `Mutex`, or a release/acquire
//! edge on a shim atomic), exactly like plain shared memory.
//!
//! Under `gpf_check`, every access is vector-clock checked: a write must
//! happen-after every prior read and write of the cell, and a read must
//! happen-after every prior write, else the schedule fails with a
//! `DataRace` report. Because model threads execute one at a time under
//! the scheduler baton, the underlying access never physically tears even
//! on racy schedules — the *detector* is what fails, deterministically.

use std::cell::UnsafeCell;

/// Shared mutable cell checked for data races under `gpf_check`.
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    v: UnsafeCell<T>,
    #[cfg(gpf_check)]
    id: crate::rt::LocId,
}

// SAFETY: RaceCell is a deliberate escape hatch for modeling shared
// non-atomic state. Under gpf_check, the cooperative scheduler serializes
// model threads, so concurrent physical access cannot occur; in normal
// builds callers must synchronize externally (the type exists for model
// code, which only runs under gpf_check).
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T> RaceCell<T> {
    /// Wrap a value.
    pub const fn new(v: T) -> Self {
        Self {
            v: UnsafeCell::new(v),
            #[cfg(gpf_check)]
            id: crate::rt::LocId::new(),
        }
    }

    /// Read the value (race-checked under `gpf_check`).
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        #[cfg(gpf_check)]
        crate::rt::race_read(&self.id);
        // SAFETY: under gpf_check the scheduler baton serializes model
        // threads (and the detector reports logical races); in normal
        // builds the caller synchronizes externally per the type contract.
        unsafe { *self.v.get() }
    }

    /// Overwrite the value (race-checked under `gpf_check`).
    pub fn set(&self, v: T) {
        #[cfg(gpf_check)]
        crate::rt::race_write(&self.id);
        // SAFETY: see `get`.
        unsafe { *self.v.get() = v };
    }

    /// Mutable access without checking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.v.get_mut()
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.v.into_inner()
    }
}
