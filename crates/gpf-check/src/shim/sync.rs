//! Shimmed locks and condition variables, with `parking_lot` ergonomics.
//!
//! The workspace treats a poisoned lock as unreachable: engine tasks that
//! panic already abort the whole job through `gpf_support::par`'s panic
//! propagation, so a poison state can only be observed while unwinding —
//! where propagating data is harmless. Both builds therefore expose
//! `lock()` returning a guard directly and recover the inner data from
//! poison instead of bubbling a `Result` through every call site.
//!
//! Under `gpf_check`, acquisition order is mediated by the scheduler: a
//! model thread that finds the lock model-held parks in the lock-wait
//! graph (deadlock-detectable) instead of blocking in the OS, and every
//! release→acquire pair carries a happens-before edge for the race
//! detector. The inner `std` lock still provides real mutual exclusion
//! against non-model threads (pass-through access stays correct).

#[cfg(not(gpf_check))]
pub use real::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(gpf_check)]
pub use checked::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Init-once cell. Pass-through in both builds: initialization racing is
/// resolved by `std`, and init closures must not perform shim operations
/// (documented model-checker gap — the registry-style init closures in
/// this workspace are trivial).
pub use std::sync::OnceLock;

#[cfg(not(gpf_check))]
mod real {
    /// A mutual-exclusion lock whose `lock()` never fails.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    /// Guard type returned by [`Mutex::lock`].
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        /// Wrap a value.
        pub const fn new(value: T) -> Self {
            Self(std::sync::Mutex::new(value))
        }

        /// Consume the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire the lock, ignoring poison.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Try to acquire the lock without blocking.
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match self.0.try_lock() {
                Ok(g) => Some(g),
                Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
                Err(std::sync::TryLockError::WouldBlock) => None,
            }
        }

        /// Mutable access without locking (requires exclusive borrow).
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// A readers-writer lock whose acquisition methods never fail.
    #[derive(Debug, Default)]
    pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

    /// Guard type returned by [`RwLock::read`].
    pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
    /// Guard type returned by [`RwLock::write`].
    pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

    impl<T> RwLock<T> {
        /// Wrap a value.
        pub const fn new(value: T) -> Self {
            Self(std::sync::RwLock::new(value))
        }

        /// Consume the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquire a shared read guard, ignoring poison.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.0.read().unwrap_or_else(|e| e.into_inner())
        }

        /// Acquire an exclusive write guard, ignoring poison.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.0.write().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Condition variable paired with [`Mutex`].
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// A fresh condvar.
        pub const fn new() -> Self {
            Self(std::sync::Condvar::new())
        }

        /// Release the guard's lock, park until notified, re-acquire.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
        }

        /// Wake one parked waiter.
        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        /// Wake every parked waiter.
        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}

#[cfg(gpf_check)]
mod checked {
    use crate::rt::{self, LocId};

    /// Instrumented mutual-exclusion lock (non-poisoning API).
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized> {
        id: LocId,
        inner: std::sync::Mutex<T>,
    }

    /// Guard for [`Mutex`]: releases the real lock first, then reports the
    /// model-level release (with its happens-before edge) to the scheduler.
    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
        std: Option<std::sync::MutexGuard<'a, T>>,
        model: bool,
    }

    impl<T> Mutex<T> {
        /// Wrap a value.
        pub const fn new(value: T) -> Self {
            Self { id: LocId::new(), inner: std::sync::Mutex::new(value) }
        }

        /// Consume the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        fn std_lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Acquire the lock, ignoring poison.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            // Model path: `lock_acquire` returns once this thread won the
            // model-level acquisition, so no *model* thread holds the std
            // lock; any contention below is a brief non-model holder.
            let model = rt::lock_acquire(&self.id);
            MutexGuard { lock: self, std: Some(self.std_lock()), model }
        }

        /// Try to acquire the lock without blocking.
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match rt::lock_try_acquire(&self.id) {
                Some(true) => Some(MutexGuard { lock: self, std: Some(self.std_lock()), model: true }),
                Some(false) => None,
                None => match self.inner.try_lock() {
                    Ok(g) => Some(MutexGuard { lock: self, std: Some(g), model: false }),
                    Err(std::sync::TryLockError::Poisoned(e)) => {
                        Some(MutexGuard { lock: self, std: Some(e.into_inner()), model: false })
                    }
                    Err(std::sync::TryLockError::WouldBlock) => None,
                },
            }
        }

        /// Mutable access without locking (requires exclusive borrow).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // gpf-lint: allow(no-panic): the guard holds the std guard for
            // its whole lifetime (Condvar::wait consumes the guard by value
            // and returns a fresh one).
            self.std.as_ref().expect("guard taken")
        }
    }

    impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
        fn deref_mut(&mut self) -> &mut T {
            // gpf-lint: allow(no-panic): see Deref.
            self.std.as_mut().expect("guard taken")
        }
    }

    impl<'a, T: ?Sized> Drop for MutexGuard<'a, T> {
        fn drop(&mut self) {
            // Order matters: release the real lock before telling the
            // scheduler, so a model waiter granted next never OS-blocks on
            // our still-held std guard while carrying the baton.
            drop(self.std.take());
            if self.model {
                rt::lock_release(&self.lock.id);
            }
        }
    }

    /// Instrumented readers-writer lock (non-poisoning API).
    #[derive(Debug, Default)]
    pub struct RwLock<T: ?Sized> {
        id: LocId,
        inner: std::sync::RwLock<T>,
    }

    /// Read guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
        std: Option<std::sync::RwLockReadGuard<'a, T>>,
        model: bool,
    }

    /// Write guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
        std: Option<std::sync::RwLockWriteGuard<'a, T>>,
        model: bool,
    }

    impl<T> RwLock<T> {
        /// Wrap a value.
        pub const fn new(value: T) -> Self {
            Self { id: LocId::new(), inner: std::sync::RwLock::new(value) }
        }

        /// Consume the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquire a shared read guard, ignoring poison.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            let model = rt::rw_read_acquire(&self.id);
            let std = self.inner.read().unwrap_or_else(|e| e.into_inner());
            RwLockReadGuard { lock: self, std: Some(std), model }
        }

        /// Acquire an exclusive write guard, ignoring poison.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            let model = rt::rw_write_acquire(&self.id);
            let std = self.inner.write().unwrap_or_else(|e| e.into_inner());
            RwLockWriteGuard { lock: self, std: Some(std), model }
        }
    }

    impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // gpf-lint: allow(no-panic): the std guard is present for the
            // guard's whole lifetime.
            self.std.as_ref().expect("guard taken")
        }
    }

    impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // gpf-lint: allow(no-panic): the std guard is present for the
            // guard's whole lifetime.
            self.std.as_ref().expect("guard taken")
        }
    }

    impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
        fn deref_mut(&mut self) -> &mut T {
            // gpf-lint: allow(no-panic): see Deref.
            self.std.as_mut().expect("guard taken")
        }
    }

    impl<'a, T: ?Sized> Drop for RwLockReadGuard<'a, T> {
        fn drop(&mut self) {
            drop(self.std.take());
            if self.model {
                rt::rw_read_release(&self.lock.id);
            }
        }
    }

    impl<'a, T: ?Sized> Drop for RwLockWriteGuard<'a, T> {
        fn drop(&mut self) {
            drop(self.std.take());
            if self.model {
                rt::rw_write_release(&self.lock.id);
            }
        }
    }

    /// Instrumented condition variable: waiters park in the scheduler (so
    /// lost wakeups are detected as all-parked states) and wakeups carry
    /// the notifier's clock as a happens-before edge.
    #[derive(Debug, Default)]
    pub struct Condvar {
        id: LocId,
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// A fresh condvar.
        pub const fn new() -> Self {
            Self { id: LocId::new(), inner: std::sync::Condvar::new() }
        }

        /// Release the guard's lock, park until notified, re-acquire.
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            let lock = guard.lock;
            let std_guard = guard.std.take();
            let model = guard.model;
            guard.model = false; // the drop below must not double-release
            drop(guard);
            match (model, std_guard) {
                (true, Some(std_guard)) => {
                    // Model path: drop the real lock, park in the scheduler
                    // (which performs the model-level release and, on
                    // wakeup, the model-level re-acquisition), then re-take
                    // the real lock.
                    drop(std_guard);
                    rt::cond_wait(&self.id, &lock.id);
                    MutexGuard { lock, std: Some(lock.std_lock()), model: true }
                }
                (false, Some(std_guard)) => {
                    let std = self.inner.wait(std_guard).unwrap_or_else(|e| e.into_inner());
                    MutexGuard { lock, std: Some(std), model: false }
                }
                // gpf-lint: allow(no-panic): a live guard always holds its
                // std guard; only this method takes it, and it consumes the
                // guard by value.
                _ => unreachable!("wait on a consumed guard"),
            }
        }

        /// Wake one parked waiter (scheduler chooses which — an explored
        /// decision point).
        pub fn notify_one(&self) {
            if !rt::cond_notify(&self.id, false) {
                self.inner.notify_one();
            }
        }

        /// Wake every parked waiter.
        pub fn notify_all(&self) {
            if !rt::cond_notify(&self.id, true) {
                self.inner.notify_all();
            }
        }
    }
}
