//! Shimmed threads: `spawn`, `scope`, and `yield_now`.
//!
//! Normal builds re-export `std::thread` items untouched. Under
//! `gpf_check`, spawns from a model thread register a new *virtual* thread
//! with the scheduler: the OS thread is still real (so TLS, borrows and
//! panics behave exactly as in production), but it only executes while the
//! scheduler's baton grants it, and spawn/join edges update the vector
//! clocks (a join makes everything the child did happen-before the
//! joiner). Spawns from non-model threads pass through to `std`.

#[cfg(not(gpf_check))]
pub use std::thread::{scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};

#[cfg(gpf_check)]
pub use checked::{scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};

#[cfg(gpf_check)]
mod checked {
    use crate::rt;

    /// Scheduling-point yield: under a model this is an explored decision
    /// point; outside one it is `std::thread::yield_now`.
    pub fn yield_now() {
        if rt::in_model() {
            rt::yield_point();
        } else {
            std::thread::yield_now();
        }
    }

    /// Instrumented `std::thread::scope` wrapper.
    ///
    /// Before `std::thread::scope`'s implicit join (which OS-blocks), any
    /// model children not explicitly joined are model-joined first —
    /// otherwise the scope owner would block in the OS while still holding
    /// the scheduler baton and wedge the whole schedule. On unwind out of
    /// the scope body the schedule is aborted instead, so parked model
    /// threads wake and unwind rather than deadlocking the join.
    pub fn scope<'env, F, R>(f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::thread::scope(|s| {
            let wrapped = Scope { inner: s, pending: std::sync::Mutex::new(Vec::new()) };
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&wrapped))) {
                Ok(v) => {
                    wrapped.join_pending();
                    v
                }
                Err(payload) => {
                    rt::abort_current_schedule("panic unwinding a thread scope");
                    std::panic::resume_unwind(payload);
                }
            }
        })
    }

    /// Scope handle mirroring `std::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        /// Model tids spawned in this scope and not yet explicitly joined.
        pending: std::sync::Mutex<Vec<usize>>,
    }

    /// Join handle mirroring `std::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, 'a, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        tid: Option<usize>,
        pending: Option<&'a std::sync::Mutex<Vec<usize>>>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread in the scope; a virtual (scheduler-registered)
        /// thread when the spawner is itself a model thread.
        pub fn spawn<'a, F, T>(&'a self, f: F) -> ScopedJoinHandle<'scope, 'a, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            match rt::spawn_register() {
                Some((sched, tid)) => {
                    self.pending.lock().unwrap_or_else(|e| e.into_inner()).push(tid);
                    let inner = self.inner.spawn(move || rt::child_main(sched, tid, f));
                    ScopedJoinHandle { inner, tid: Some(tid), pending: Some(&self.pending) }
                }
                None => {
                    ScopedJoinHandle { inner: self.inner.spawn(f), tid: None, pending: None }
                }
            }
        }

        /// Model-join every child not explicitly joined, in spawn order.
        fn join_pending(&self) {
            let tids = {
                let mut p = self.pending.lock().unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut *p)
            };
            for tid in tids {
                rt::join_wait(tid);
            }
        }
    }

    impl<'scope, 'a, T> ScopedJoinHandle<'scope, 'a, T> {
        /// Join the thread, returning its result (or the panic payload).
        pub fn join(self) -> std::thread::Result<T> {
            if let Some(tid) = self.tid {
                // Model join: park until the child's virtual thread is
                // finished (the real join below then returns immediately)
                // and acquire its final clock.
                if let Some(pending) = self.pending {
                    pending.lock().unwrap_or_else(|e| e.into_inner()).retain(|t| *t != tid);
                }
                rt::join_wait(tid);
            }
            self.inner.join()
        }
    }

    /// Join handle mirroring `std::thread::JoinHandle`.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        tid: Option<usize>,
    }

    /// Spawn a free thread; a virtual (scheduler-registered) thread when
    /// the spawner is itself a model thread.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match rt::spawn_register() {
            Some((sched, tid)) => {
                let inner = std::thread::spawn(move || rt::child_main(sched, tid, f));
                JoinHandle { inner, tid: Some(tid) }
            }
            None => JoinHandle { inner: std::thread::spawn(f), tid: None },
        }
    }

    impl<T> JoinHandle<T> {
        /// Join the thread, returning its result (or the panic payload).
        pub fn join(self) -> std::thread::Result<T> {
            if let Some(tid) = self.tid {
                rt::join_wait(tid);
            }
            self.inner.join()
        }
    }
}
