//! Per-primitive model operations: ordering-aware atomics over store
//! histories, scheduler-mediated locks and condvars, and vector-clock race
//! checking for `RaceCell`. Every function here is a scheduling point; all
//! return pass-through sentinels (`None` / `false`) when the caller is not
//! a model thread.

use std::sync::atomic::Ordering;

use super::{cur_ctx, merge_view, FailureKind, Phase, Store, VClock, Wait, STORE_WINDOW};

fn is_acquire(order: Ordering) -> bool {
    matches!(order, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(order: Ordering) -> bool {
    matches!(order, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Ordering-aware atomic load. The scheduler picks which store of the
/// location's visible window this thread observes: a `Relaxed` or
/// `Acquire` load with no happens-before edge to the newest store may
/// legitimately read a stale value, which is exactly the class of bug the
/// checker exists to surface. `latest` reads the mirror atomic, used only
/// to seed the location's initial value.
pub fn atomic_load(id: &super::LocId, order: Ordering, latest: &dyn Fn() -> u64) -> Option<u64> {
    let (sched, my) = cur_ctx()?;
    let key = id.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        drop(st);
        return Some(latest());
    }
    seed_loc(&mut st, key, latest);
    if order == Ordering::SeqCst {
        let sc_clock = st.sc_clock.clone();
        let sc_view = st.sc_view.clone();
        st.threads[my].clock.join(&sc_clock);
        merge_view(&mut st.threads[my].view, &sc_view);
    }
    let floor = st.threads[my].view.get(&key).copied().unwrap_or(0);
    let len = st.locs[&key].stores.len();
    let lo = floor.max(len.saturating_sub(STORE_WINDOW));
    let hi = len - 1;
    let n = hi - lo + 1;
    // Choice 0 is the newest store, so forced moves and DFS-first paths
    // read sequentially-consistent values.
    let back = if n > 1 { st.decider.pick(n) } else { 0 };
    let idx = hi - back;
    let (val, s_release, s_clock, s_view) = {
        let s = &st.locs[&key].stores[idx];
        (s.val, s.release, s.clock.clone(), s.view.clone())
    };
    if is_acquire(order) && s_release {
        st.threads[my].clock.join(&s_clock);
        merge_view(&mut st.threads[my].view, &s_view);
    }
    let floor_entry = st.threads[my].view.entry(key).or_insert(0);
    *floor_entry = (*floor_entry).max(idx);
    let _ = sched.pick_and_wait(st, my);
    Some(val)
}

/// Ordering-aware atomic store: appends to the location's modification
/// order. `apply` must write the value into the mirror atomic and return
/// the previous mirror value (used to seed the initial store). Returns
/// false for pass-through (caller stores directly).
pub fn atomic_store(id: &super::LocId, order: Ordering, bits: u64, apply: &dyn Fn() -> u64) -> bool {
    let Some((sched, my)) = cur_ctx() else { return false };
    let key = id.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        drop(st);
        let _ = apply();
        return true;
    }
    let prev = apply();
    seed_loc(&mut st, key, &|| prev);
    push_store(&mut st, key, my, bits, order);
    let _ = sched.pick_and_wait(st, my);
    true
}

/// Atomic read-modify-write. Per the C++ coherence rule an RMW always
/// reads the newest store in modification order, regardless of ordering —
/// the ordering only controls which happens-before edges transfer.
pub fn atomic_rmw(
    id: &super::LocId,
    order: Ordering,
    latest: &dyn Fn() -> u64,
    compute: &dyn Fn(u64) -> u64,
    apply: &dyn Fn(u64),
) -> Option<u64> {
    let (sched, my) = cur_ctx()?;
    let key = id.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        drop(st);
        let old = latest();
        apply(compute(old));
        return Some(old);
    }
    seed_loc(&mut st, key, latest);
    let old = rmw_read_newest(&mut st, key, my, order);
    let new = compute(old);
    push_store(&mut st, key, my, new, order);
    apply(new);
    let _ = sched.pick_and_wait(st, my);
    Some(old)
}

/// Atomic compare-exchange against the newest store.
#[allow(clippy::too_many_arguments)]
pub fn atomic_cx(
    id: &super::LocId,
    success: Ordering,
    failure: Ordering,
    current: u64,
    new: u64,
    latest: &dyn Fn() -> u64,
    apply: &dyn Fn(u64),
) -> Option<Result<u64, u64>> {
    let (sched, my) = cur_ctx()?;
    let key = id.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        drop(st);
        return Some(Err(latest()));
    }
    seed_loc(&mut st, key, latest);
    let newest = {
        let stores = &st.locs[&key].stores;
        stores[stores.len() - 1].val
    };
    let result = if newest == current {
        rmw_read_newest(&mut st, key, my, success);
        push_store(&mut st, key, my, new, success);
        apply(new);
        Ok(newest)
    } else {
        // Failed exchange acts as a load of the newest store.
        rmw_read_newest(&mut st, key, my, failure);
        Err(newest)
    };
    let _ = sched.pick_and_wait(st, my);
    Some(result)
}

/// Seed a location's modification order with its pre-model value. The
/// initial store is a release with the zero clock: it happened-before
/// every model thread (written during setup), so any load of it is clean.
fn seed_loc(st: &mut super::State, key: usize, latest: &dyn Fn() -> u64) {
    let loc = st.locs.entry(key).or_default();
    if loc.stores.is_empty() {
        loc.stores.push(Store {
            val: latest(),
            clock: VClock::default(),
            view: super::View::default(),
            release: true,
        });
    }
}

/// Shared tail of RMW-style reads: observe the newest store (joining its
/// edges if this op acquires) and raise the coherence floor to it.
fn rmw_read_newest(st: &mut super::State, key: usize, my: usize, order: Ordering) -> u64 {
    if order == Ordering::SeqCst {
        let sc_clock = st.sc_clock.clone();
        let sc_view = st.sc_view.clone();
        st.threads[my].clock.join(&sc_clock);
        merge_view(&mut st.threads[my].view, &sc_view);
    }
    let idx = st.locs[&key].stores.len() - 1;
    let (val, s_release, s_clock, s_view) = {
        let s = &st.locs[&key].stores[idx];
        (s.val, s.release, s.clock.clone(), s.view.clone())
    };
    if is_acquire(order) && s_release {
        st.threads[my].clock.join(&s_clock);
        merge_view(&mut st.threads[my].view, &s_view);
    }
    let floor = st.threads[my].view.entry(key).or_insert(0);
    *floor = (*floor).max(idx);
    val
}

/// Append a store by `my` to `key`'s modification order, carrying this
/// thread's clock iff the ordering releases, and updating the SeqCst
/// global view for SeqCst stores.
fn push_store(st: &mut super::State, key: usize, my: usize, val: u64, order: Ordering) {
    let clock = st.threads[my].clock.clone();
    let view = st.threads[my].view.clone();
    let idx = st.locs[&key].stores.len();
    if let Some(loc) = st.locs.get_mut(&key) {
        loc.stores.push(Store {
            val,
            clock: clock.clone(),
            view: view.clone(),
            release: is_release(order),
        });
    }
    let floor = st.threads[my].view.entry(key).or_insert(0);
    *floor = (*floor).max(idx);
    if order == Ordering::SeqCst {
        st.sc_clock.join(&clock);
        merge_view(&mut st.sc_view, &view);
        let sc_floor = st.sc_view.entry(key).or_insert(0);
        *sc_floor = (*sc_floor).max(idx);
    }
}

// ---------------------------------------------------------------------------
// Mutex

/// Model-level mutex acquisition: parks in the scheduler while another
/// model thread holds the lock (deadlock chains detected eagerly), and
/// joins the lock's release clock on success. Returns false outside a
/// model (caller uses the real lock directly).
pub fn lock_acquire(id: &super::LocId) -> bool {
    let Some((sched, my)) = cur_ctx() else { return false };
    let key = id.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        return true;
    }
    st.local_loc(key);
    loop {
        let holder = st.locks.entry(key).or_default().held;
        match holder {
            None => {
                let clock = st.locks[&key].clock.clone();
                let view = st.locks[&key].view.clone();
                st.threads[my].clock.join(&clock);
                merge_view(&mut st.threads[my].view, &view);
                // gpf-lint: allow(no-panic): entry() above materialized it.
                st.locks.get_mut(&key).expect("lock entry").held = Some(my);
                break;
            }
            Some(holder) => {
                if let Some(chain) = lock_cycle(&st, my, holder) {
                    let msg = format!("lock-wait cycle: {chain}");
                    sched.fail_abort(&mut st, FailureKind::Deadlock, msg);
                    drop(st);
                    sched.abort_exit();
                    return true;
                }
                st.threads[my].phase = Phase::Parked(Wait::Lock(key));
                sched.pick_next(&mut st, Some(my));
                if st.abort {
                    drop(st);
                    sched.abort_exit();
                    return true;
                }
                sched.cv.notify_all();
                st = match sched.wait_granted(st, my) {
                    Some(s) => s,
                    None => return true,
                };
                // Granted: the lock was released and we were picked, but
                // another thread may have retaken it — re-check.
            }
        }
    }
    let _ = sched.pick_and_wait(st, my);
    true
}

/// Walk the lock-wait chain from `holder`: if it leads back to `me`, the
/// park we are about to do would complete a cycle.
fn lock_cycle(st: &super::State, me: usize, mut holder: usize) -> Option<String> {
    let mut chain = format!("t{me}");
    for _ in 0..st.threads.len() {
        chain.push_str(&format!(" -> t{holder}"));
        if holder == me {
            return Some(chain);
        }
        match st.threads[holder].phase {
            Phase::Parked(Wait::Lock(k)) => match st.locks.get(&k).and_then(|l| l.held) {
                Some(next) => holder = next,
                None => return None,
            },
            _ => return None,
        }
    }
    None
}

/// Model-level try-lock: `Some(granted)` under a model (no parking — a
/// held lock is an immediate, explorable `false`), `None` to pass through.
pub fn lock_try_acquire(id: &super::LocId) -> Option<bool> {
    let (sched, my) = cur_ctx()?;
    let key = id.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        return Some(false);
    }
    let granted = {
        let entry = st.locks.entry(key).or_default();
        if entry.held.is_none() {
            entry.held = Some(my);
            true
        } else {
            false
        }
    };
    if granted {
        let clock = st.locks[&key].clock.clone();
        let view = st.locks[&key].view.clone();
        st.threads[my].clock.join(&clock);
        merge_view(&mut st.threads[my].view, &view);
    }
    let _ = sched.pick_and_wait(st, my);
    Some(granted)
}

/// Model-level mutex release: publishes this thread's clock to the lock
/// and readies every parked waiter (they re-contend when scheduled).
pub fn lock_release(id: &super::LocId) {
    let Some((sched, my)) = cur_ctx() else { return };
    let key = id.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        return;
    }
    release_lock_inner(&mut st, key, my);
    let _ = sched.pick_and_wait(st, my);
}

fn release_lock_inner(st: &mut super::State, key: usize, my: usize) {
    let clock = st.threads[my].clock.clone();
    let view = st.threads[my].view.clone();
    let entry = st.locks.entry(key).or_default();
    entry.held = None;
    entry.clock.join(&clock);
    merge_view(&mut entry.view, &view);
    for t in st.threads.iter_mut() {
        if t.phase == Phase::Parked(Wait::Lock(key)) {
            t.phase = Phase::Ready;
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock

/// Model-level shared acquisition.
pub fn rw_read_acquire(id: &super::LocId) -> bool {
    let Some((sched, my)) = cur_ctx() else { return false };
    let key = id.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        return true;
    }
    st.local_loc(key);
    loop {
        let free = st.rws.entry(key).or_default().writer.is_none();
        if free {
            let wclock = st.rws[&key].wclock.clone();
            let wview = st.rws[&key].wview.clone();
            st.threads[my].clock.join(&wclock);
            merge_view(&mut st.threads[my].view, &wview);
            // gpf-lint: allow(no-panic): entry() above materialized it.
            st.rws.get_mut(&key).expect("rw entry").readers += 1;
            break;
        }
        st.threads[my].phase = Phase::Parked(Wait::Rw(key));
        sched.pick_next(&mut st, Some(my));
        if st.abort {
            drop(st);
            sched.abort_exit();
            return true;
        }
        sched.cv.notify_all();
        st = match sched.wait_granted(st, my) {
            Some(s) => s,
            None => return true,
        };
    }
    let _ = sched.pick_and_wait(st, my);
    true
}

/// Model-level exclusive acquisition (joins both read and write clocks).
pub fn rw_write_acquire(id: &super::LocId) -> bool {
    let Some((sched, my)) = cur_ctx() else { return false };
    let key = id.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        return true;
    }
    st.local_loc(key);
    loop {
        let free = {
            let e = st.rws.entry(key).or_default();
            e.writer.is_none() && e.readers == 0
        };
        if free {
            let (wclock, rclock, wview, rview) = {
                let e = &st.rws[&key];
                (e.wclock.clone(), e.rclock.clone(), e.wview.clone(), e.rview.clone())
            };
            st.threads[my].clock.join(&wclock);
            st.threads[my].clock.join(&rclock);
            merge_view(&mut st.threads[my].view, &wview);
            merge_view(&mut st.threads[my].view, &rview);
            // gpf-lint: allow(no-panic): entry() above materialized it.
            st.rws.get_mut(&key).expect("rw entry").writer = Some(my);
            break;
        }
        st.threads[my].phase = Phase::Parked(Wait::Rw(key));
        sched.pick_next(&mut st, Some(my));
        if st.abort {
            drop(st);
            sched.abort_exit();
            return true;
        }
        sched.cv.notify_all();
        st = match sched.wait_granted(st, my) {
            Some(s) => s,
            None => return true,
        };
    }
    let _ = sched.pick_and_wait(st, my);
    true
}

/// Model-level shared release.
pub fn rw_read_release(id: &super::LocId) {
    let Some((sched, my)) = cur_ctx() else { return };
    let key = id.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        return;
    }
    let clock = st.threads[my].clock.clone();
    let view = st.threads[my].view.clone();
    let entry = st.rws.entry(key).or_default();
    entry.readers = entry.readers.saturating_sub(1);
    entry.rclock.join(&clock);
    merge_view(&mut entry.rview, &view);
    wake_rw_waiters(&mut st, key);
    let _ = sched.pick_and_wait(st, my);
}

/// Model-level exclusive release.
pub fn rw_write_release(id: &super::LocId) {
    let Some((sched, my)) = cur_ctx() else { return };
    let key = id.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        return;
    }
    let clock = st.threads[my].clock.clone();
    let view = st.threads[my].view.clone();
    let entry = st.rws.entry(key).or_default();
    entry.writer = None;
    entry.wclock.join(&clock);
    merge_view(&mut entry.wview, &view);
    wake_rw_waiters(&mut st, key);
    let _ = sched.pick_and_wait(st, my);
}

fn wake_rw_waiters(st: &mut super::State, key: usize) {
    for t in st.threads.iter_mut() {
        if t.phase == Phase::Parked(Wait::Rw(key)) {
            t.phase = Phase::Ready;
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar

/// Model-level condvar wait: atomically (under the scheduler state lock)
/// release the mutex and park on the condvar, then — once notified and
/// scheduled — re-acquire the mutex before returning. The caller (shim)
/// has already dropped the real lock and re-takes it after this returns.
pub fn cond_wait(cv: &super::LocId, lock: &super::LocId) {
    let Some((sched, my)) = cur_ctx() else { return };
    let cv_key = cv.key();
    let lock_key = lock.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        return;
    }
    st.local_loc(cv_key);
    release_lock_inner(&mut st, lock_key, my);
    st.threads[my].phase = Phase::Parked(Wait::Cond(cv_key));
    sched.pick_next(&mut st, Some(my));
    if st.abort {
        drop(st);
        sched.abort_exit();
        return;
    }
    sched.cv.notify_all();
    st = match sched.wait_granted(st, my) {
        Some(s) => s,
        None => return,
    };
    // Notified (the notifier joined its clock into ours) and scheduled:
    // re-contend for the mutex like a fresh acquirer.
    loop {
        let holder = st.locks.entry(lock_key).or_default().held;
        match holder {
            None => {
                let clock = st.locks[&lock_key].clock.clone();
                let view = st.locks[&lock_key].view.clone();
                st.threads[my].clock.join(&clock);
                merge_view(&mut st.threads[my].view, &view);
                // gpf-lint: allow(no-panic): entry() above materialized it.
                st.locks.get_mut(&lock_key).expect("lock entry").held = Some(my);
                return;
            }
            Some(_) => {
                st.threads[my].phase = Phase::Parked(Wait::Lock(lock_key));
                sched.pick_next(&mut st, Some(my));
                if st.abort {
                    drop(st);
                    sched.abort_exit();
                    return;
                }
                sched.cv.notify_all();
                st = match sched.wait_granted(st, my) {
                    Some(s) => s,
                    None => return,
                };
            }
        }
    }
}

/// Model-level notify. Which waiter wakes (for `notify_one` with several
/// parked) is an explored decision. A notify with no waiters is a no-op —
/// the lost-wakeup ingredient the all-parked detector then catches.
/// Returns false outside a model (caller uses the real condvar).
pub fn cond_notify(cv: &super::LocId, all: bool) -> bool {
    let Some((sched, my)) = cur_ctx() else { return false };
    let key = cv.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        return true;
    }
    let waiters: Vec<usize> = st
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| t.phase == Phase::Parked(Wait::Cond(key)))
        .map(|(i, _)| i)
        .collect();
    let my_clock = st.threads[my].clock.clone();
    let my_view = st.threads[my].view.clone();
    if all {
        for w in waiters {
            st.threads[w].clock.join(&my_clock);
            merge_view(&mut st.threads[w].view, &my_view);
            st.threads[w].phase = Phase::Ready;
        }
    } else if !waiters.is_empty() {
        let idx = if waiters.len() > 1 { st.decider.pick(waiters.len()) } else { 0 };
        let w = waiters[idx];
        st.threads[w].clock.join(&my_clock);
        merge_view(&mut st.threads[w].view, &my_view);
        st.threads[w].phase = Phase::Ready;
    }
    let _ = sched.pick_and_wait(st, my);
    true
}

// ---------------------------------------------------------------------------
// RaceCell

/// Vector-clock check for a `RaceCell` read: every prior write must
/// happen-before this thread's current clock.
pub fn race_read(id: &super::LocId) {
    let Some((sched, my)) = cur_ctx() else { return };
    let key = id.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        return;
    }
    let name = st.local_loc(key);
    let my_clock = st.threads[my].clock.clone();
    let racy = {
        let cell = st.cells.entry(key).or_default();
        !cell.writes.le(&my_clock)
    };
    if racy {
        let msg = format!(
            "read of RaceCell #{name} by t{my} races a prior write (write clock {:?} not ordered before reader clock {:?})",
            st.cells[&key].writes, my_clock
        );
        sched.fail_abort(&mut st, FailureKind::DataRace, msg);
        drop(st);
        sched.abort_exit();
        return;
    }
    let own = my_clock.get(my);
    if let Some(cell) = st.cells.get_mut(&key) {
        cell.reads.set_component(my, own);
    }
    let _ = sched.pick_and_wait(st, my);
}

/// Vector-clock check for a `RaceCell` write: every prior read *and*
/// write must happen-before this thread's current clock.
pub fn race_write(id: &super::LocId) {
    let Some((sched, my)) = cur_ctx() else { return };
    let key = id.key();
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        return;
    }
    let name = st.local_loc(key);
    let my_clock = st.threads[my].clock.clone();
    let racy = {
        let cell = st.cells.entry(key).or_default();
        !(cell.writes.le(&my_clock) && cell.reads.le(&my_clock))
    };
    if racy {
        let msg = format!(
            "write to RaceCell #{name} by t{my} races a prior access (writes {:?} / reads {:?} not ordered before writer clock {:?})",
            st.cells[&key].writes, st.cells[&key].reads, my_clock
        );
        sched.fail_abort(&mut st, FailureKind::DataRace, msg);
        drop(st);
        sched.abort_exit();
        return;
    }
    let own = my_clock.get(my);
    if let Some(cell) = st.cells.get_mut(&key) {
        cell.writes.set_component(my, own);
    }
    let _ = sched.pick_and_wait(st, my);
}
