//! The cooperative scheduler behind `--cfg gpf_check`.
//!
//! Model threads are real OS threads (TLS, borrows and panics behave as in
//! production), but a baton serializes them: exactly one model thread runs
//! at a time, and every shim operation is a scheduling point where the
//! thread that just completed its operation picks — through the schedule's
//! [`Decider`] — which ready thread runs next. Recording only the decisions
//! with more than one alternative makes a schedule a short replayable
//! choice string, which is what the explorer backtracks over (exhaustive
//! mode) or derives from a seed (random mode).
//!
//! This module owns thread/baton lifecycle, vector clocks, and failure
//! classification; the per-primitive operations (atomics, locks, condvars,
//! race cells) live in [`ops`] and are re-exported at `rt::*`.

mod ops;

pub use ops::*;

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// How many trailing stores of a location's modification order a load may
/// observe (beyond its coherence floor). Small on purpose: it bounds the
/// decision fan-out while still exposing stale-read bugs one or two stores
/// deep, which is where real ordering mistakes live.
pub(crate) const STORE_WINDOW: usize = 3;

/// Stable identity for a shimmed location (atomic, lock, condvar, cell).
///
/// Const-constructible so shimmed statics work; the id itself is assigned
/// lazily from a process-global counter on first model access, so it stays
/// stable across the many schedules of one exploration.
#[derive(Debug, Default)]
pub struct LocId {
    id: AtomicUsize,
}

static NEXT_LOC: AtomicUsize = AtomicUsize::new(1);

impl LocId {
    /// An unassigned location id.
    pub const fn new() -> Self {
        Self { id: AtomicUsize::new(0) }
    }

    /// The process-global key, assigned on first use.
    pub(crate) fn key(&self) -> usize {
        let cur = self.id.load(Ordering::Relaxed);
        if cur != 0 {
            return cur;
        }
        let fresh = NEXT_LOC.fetch_add(1, Ordering::Relaxed);
        match self.id.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => fresh,
            Err(winner) => winner,
        }
    }
}

/// A grow-on-demand vector clock indexed by virtual thread id.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub(crate) fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    pub(crate) fn set_component(&mut self, tid: usize, v: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = self.0[tid].max(v);
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, v) in other.0.iter().enumerate() {
            self.0[i] = self.0[i].max(*v);
        }
    }

    /// `self ≤ other` componentwise (everything in `self` happened-before
    /// or at the point described by `other`).
    pub(crate) fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, v)| *v <= other.get(i))
    }
}

/// Per-thread visibility floors: the oldest store index of each location
/// this thread is still allowed to observe (coherence + acquired edges).
pub(crate) type View = HashMap<usize, usize>;

pub(crate) fn merge_view(into: &mut View, from: &View) {
    for (k, v) in from {
        let e = into.entry(*k).or_insert(0);
        *e = (*e).max(*v);
    }
}

/// What a parked thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Wait {
    Lock(usize),
    Rw(usize),
    Cond(usize),
    Join(usize),
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Phase {
    Ready,
    Parked(Wait),
    Finished,
}

#[derive(Debug)]
pub(crate) struct Th {
    pub(crate) phase: Phase,
    pub(crate) clock: VClock,
    pub(crate) view: View,
}

/// One entry in a location's modification order.
#[derive(Debug)]
pub(crate) struct Store {
    pub(crate) val: u64,
    /// Clock of the storing thread, transferred to acquiring loads iff
    /// `release` is set.
    pub(crate) clock: VClock,
    pub(crate) view: View,
    pub(crate) release: bool,
}

#[derive(Debug, Default)]
pub(crate) struct Loc {
    pub(crate) stores: Vec<Store>,
}

#[derive(Debug, Default)]
pub(crate) struct LockSt {
    pub(crate) held: Option<usize>,
    /// Joined from every releaser; joined into every acquirer.
    pub(crate) clock: VClock,
    /// Visibility floors released with the lock — an acquirer must observe
    /// every store the releaser had observed (or made) by the unlock.
    pub(crate) view: View,
}

#[derive(Debug, Default)]
pub(crate) struct RwSt {
    pub(crate) writer: Option<usize>,
    pub(crate) readers: usize,
    /// Clock joined from write releases (acquired by readers and writers).
    pub(crate) wclock: VClock,
    /// Clock joined from read releases (acquired by writers only).
    pub(crate) rclock: VClock,
    /// Visibility floors from write releases.
    pub(crate) wview: View,
    /// Visibility floors from read releases.
    pub(crate) rview: View,
}

/// FastTrack-style access history for a [`RaceCell`](crate::shim::cell::RaceCell).
#[derive(Debug, Default)]
pub(crate) struct CellSt {
    pub(crate) writes: VClock,
    pub(crate) reads: VClock,
}

/// Why a schedule failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Unsynchronized conflicting accesses to a `RaceCell`.
    DataRace,
    /// No thread runnable and at least one parked on a lock/join.
    Deadlock,
    /// No thread runnable and every parked thread waits on a condvar.
    LostWakeup,
    /// The schedule exceeded its step budget without finishing.
    Livelock,
    /// A model thread panicked (failed assertion or real bug).
    ModelPanic,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::DataRace => "data race",
            FailureKind::Deadlock => "deadlock",
            FailureKind::LostWakeup => "lost wakeup",
            FailureKind::Livelock => "livelock (step budget exceeded)",
            FailureKind::ModelPanic => "model panic",
        };
        f.write_str(s)
    }
}

/// A recorded failure, before the explorer attaches replay info.
#[derive(Debug, Clone)]
pub struct FailureRec {
    pub kind: FailureKind,
    pub message: String,
}

/// One recorded decision: `chosen` out of `n > 1` alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    pub n: u32,
    pub chosen: u32,
}

/// Where a schedule's decisions come from.
#[derive(Debug, Clone)]
pub enum DecisionSource {
    /// Replay these choices, then always pick alternative 0 (the
    /// exhaustive explorer's DFS order).
    Prefix(Vec<u32>),
    /// SplitMix64-derived choices from this seed.
    Random(u64),
}

#[derive(Debug)]
pub(crate) struct Decider {
    mode: DecisionSource,
    pos: usize,
    rng: u64,
    pub(crate) trace: Vec<Choice>,
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Decider {
    fn new(mode: DecisionSource) -> Self {
        let rng = match &mode {
            DecisionSource::Random(seed) => *seed,
            DecisionSource::Prefix(_) => 0,
        };
        Self { mode, pos: 0, rng, trace: Vec::new() }
    }

    /// Pick among `n > 1` alternatives and record the choice.
    pub(crate) fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 1);
        let chosen = match &self.mode {
            DecisionSource::Prefix(p) => {
                // Clamp a diverged replay instead of indexing out of
                // bounds; same-code replays never diverge.
                p.get(self.pos).map(|c| (*c as usize).min(n - 1)).unwrap_or(0)
            }
            DecisionSource::Random(_) => (splitmix64(&mut self.rng) % n as u64) as usize,
        };
        self.pos += 1;
        self.trace.push(Choice { n: n as u32, chosen: chosen as u32 });
        chosen
    }
}

/// Per-schedule scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    pub max_steps: usize,
    /// `Some(bound)` enables the exhaustive mode's preemption bound.
    pub max_preemptions: Option<usize>,
    pub decisions: DecisionSource,
}

/// Everything a finished schedule reports back to the explorer.
#[derive(Debug)]
pub struct Outcome {
    pub failure: Option<FailureRec>,
    pub choices: Vec<Choice>,
    pub steps: usize,
}

pub(crate) struct State {
    pub(crate) threads: Vec<Th>,
    pub(crate) current: Option<usize>,
    pub(crate) abort: bool,
    pub(crate) done: bool,
    pub(crate) failure: Option<FailureRec>,
    pub(crate) steps: usize,
    pub(crate) max_steps: usize,
    pub(crate) preemptions: usize,
    pub(crate) max_preemptions: Option<usize>,
    pub(crate) decider: Decider,
    pub(crate) locs: HashMap<usize, Loc>,
    pub(crate) locks: HashMap<usize, LockSt>,
    pub(crate) rws: HashMap<usize, RwSt>,
    pub(crate) cells: HashMap<usize, CellSt>,
    pub(crate) sc_clock: VClock,
    pub(crate) sc_view: View,
    /// Schedule-local display names for locations, assigned in first-touch
    /// order — process-global [`LocId`] keys differ between schedules for
    /// model-local state, so reports must never print them.
    pub(crate) loc_names: HashMap<usize, usize>,
}

impl State {
    /// Schedule-local, deterministic display index for a location.
    pub(crate) fn local_loc(&mut self, key: usize) -> usize {
        let n = self.loc_names.len();
        *self.loc_names.entry(key).or_insert(n)
    }

    pub(crate) fn loc_name(&self, key: usize) -> usize {
        self.loc_names.get(&key).copied().unwrap_or(usize::MAX)
    }
}

/// One schedule's scheduler: the baton, the model state, the decider.
pub struct Sched {
    pub(crate) st: Mutex<State>,
    pub(crate) cv: Condvar,
}

/// Panic payload used to unwind model threads when a schedule aborts.
/// Deliberately not an error in itself — the recorded [`FailureRec`] (or
/// the absence of one, for clean teardown) is the schedule's verdict.
pub(crate) struct AbortSchedule;

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Sched>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// True when the calling OS thread is a registered model thread.
pub fn in_model() -> bool {
    CTX.try_with(|c| c.borrow().is_some()).unwrap_or(false)
}

pub(crate) fn cur_ctx() -> Option<(Arc<Sched>, usize)> {
    CTX.try_with(|c| c.borrow().clone()).unwrap_or(None)
}

struct CtxGuard;

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let _ = CTX.try_with(|c| *c.borrow_mut() = None);
    }
}

/// Abort the current schedule (no failure recorded — used by shim wrappers
/// tearing down after a panic already captured elsewhere). No-op outside a
/// model thread.
pub fn abort_current_schedule(_why: &str) {
    if let Some((sched, _)) = cur_ctx() {
        let mut st = sched.lock_state();
        st.abort = true;
        sched.cv.notify_all();
    }
}

/// An explicit scheduling point with no memory effect.
pub fn yield_point() {
    let Some((sched, my)) = cur_ctx() else { return };
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        return;
    }
    let _ = sched.pick_and_wait(st, my);
}

impl Sched {
    pub fn new(cfg: SchedConfig) -> Arc<Self> {
        Arc::new(Self {
            st: Mutex::new(State {
                threads: Vec::new(),
                current: None,
                abort: false,
                done: false,
                failure: None,
                steps: 0,
                max_steps: cfg.max_steps,
                preemptions: 0,
                max_preemptions: cfg.max_preemptions,
                decider: Decider::new(cfg.decisions),
                locs: HashMap::new(),
                locks: HashMap::new(),
                rws: HashMap::new(),
                cells: HashMap::new(),
                sc_clock: VClock::default(),
                sc_view: View::default(),
                loc_names: HashMap::new(),
            }),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn lock_state(&self) -> MutexGuard<'_, State> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a virtual thread (before `launch`, or from a running model
    /// thread via the shim's spawn). Returns its tid.
    pub fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        let clock = match st.current {
            // Spawn edge: child inherits the spawner's clock.
            Some(parent) => {
                let mut c = st.threads[parent].clock.clone();
                c.bump(parent);
                st.threads[parent].clock.bump(parent);
                c
            }
            None => VClock::default(),
        };
        let view = st.current.map(|p| st.threads[p].view.clone()).unwrap_or_default();
        st.threads.push(Th { phase: Phase::Ready, clock, view });
        tid
    }

    /// Hand the baton to the first thread (a recorded decision when more
    /// than one thread is registered).
    pub fn launch(&self) {
        let mut st = self.lock_state();
        self.pick_next(&mut st, None);
        self.cv.notify_all();
    }

    /// Read the schedule's result. Call after every model thread exited.
    pub fn outcome(&self) -> Outcome {
        let st = self.lock_state();
        Outcome {
            failure: st.failure.clone(),
            choices: st.decider.trace.clone(),
            steps: st.steps,
        }
    }

    /// Per-op bookkeeping: advance this thread's clock component, charge
    /// the step budget, and convert exhaustion into a livelock failure.
    /// Returns false when the op must not proceed (schedule aborted): the
    /// caller returns its pass-through fallback, which only actually runs
    /// when the thread is already unwinding (see [`Sched::abort_exit`]).
    #[must_use]
    pub(crate) fn bump_step(&self, st: &mut MutexGuard<'_, State>, my: usize) -> bool {
        if st.abort {
            self.abort_exit();
            return false;
        }
        st.steps += 1;
        st.threads[my].clock.bump(my);
        if st.steps > st.max_steps {
            let msg = format!(
                "schedule exceeded its step budget ({} ops) without completing",
                st.max_steps
            );
            self.fail_abort(st, FailureKind::Livelock, msg);
            self.abort_exit();
            return false;
        }
        true
    }

    /// Record a failure (first one wins), abort the schedule, wake parked
    /// threads so they unwind.
    pub(crate) fn fail_abort(
        &self,
        st: &mut MutexGuard<'_, State>,
        kind: FailureKind,
        message: String,
    ) {
        if st.failure.is_none() {
            st.failure = Some(FailureRec { kind, message });
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Unwind the calling model thread out of the aborted schedule — but
    /// never panic from inside an unwind (guard `Drop`s run model release
    /// ops while panicking; a second panic would abort the process). When
    /// already unwinding, return and let the caller bail out quietly.
    pub(crate) fn abort_exit(&self) {
        if !std::thread::panicking() {
            std::panic::panic_any(AbortSchedule);
        }
    }

    /// Choose the next thread to run. `my` is the thread that just
    /// completed an op (None during `launch`). Detects the "nobody is
    /// runnable" terminal states.
    pub(crate) fn pick_next(&self, st: &mut MutexGuard<'_, State>, my: Option<usize>) {
        let ready: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.phase == Phase::Ready)
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            if st.threads.iter().all(|t| t.phase == Phase::Finished) {
                st.done = true;
                st.current = None;
                return;
            }
            let (kind, message) = classify_stuck(st);
            self.fail_abort(st, kind, message);
            // The caller is the running thread; it unwinds via its
            // post-pick abort check (wait_granted or finish_thread).
            return;
        }
        let candidates = match (my, st.max_preemptions) {
            // Preemption bound: if the just-ran thread is still runnable
            // and the budget is spent, it must keep running.
            (Some(me), Some(bound))
                if st.preemptions >= bound && st.threads[me].phase == Phase::Ready =>
            {
                vec![me]
            }
            _ => ready,
        };
        let idx = if candidates.len() > 1 { st.decider.pick(candidates.len()) } else { 0 };
        let next = candidates[idx];
        if let Some(me) = my {
            if next != me && st.threads[me].phase == Phase::Ready {
                st.preemptions += 1;
            }
        }
        st.current = Some(next);
    }

    /// The trailing half of every op: pick who runs next, hand over the
    /// baton, and (if it isn't us) park until it comes back. Returns false
    /// when the schedule aborted while we were parked (only reachable
    /// during an unwind — see [`Sched::abort_exit`]).
    pub(crate) fn pick_and_wait(&self, mut st: MutexGuard<'_, State>, my: usize) -> bool {
        self.pick_next(&mut st, Some(my));
        if st.abort {
            drop(st);
            self.abort_exit();
            return false;
        }
        if st.current == Some(my) {
            return true;
        }
        self.cv.notify_all();
        self.wait_granted(st, my).is_some()
    }

    /// Block (on the scheduler condvar, not in model state) until this
    /// thread holds the baton again. `None` means the schedule aborted:
    /// the calling thread either panicked out of here (normal case) or is
    /// already unwinding and must bail out quietly.
    pub(crate) fn wait_granted<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        my: usize,
    ) -> Option<MutexGuard<'a, State>> {
        while !st.abort && st.current != Some(my) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort {
            drop(st);
            self.abort_exit();
            return None;
        }
        Some(st)
    }

    /// Mark `my` finished, transfer its clock to joiners, hand the baton on.
    pub(crate) fn finish_thread(&self, my: usize) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            self.abort_exit();
            return;
        }
        st.threads[my].phase = Phase::Finished;
        let my_clock = st.threads[my].clock.clone();
        let my_view = st.threads[my].view.clone();
        for t in st.threads.iter_mut() {
            if t.phase == Phase::Parked(Wait::Join(my)) {
                t.clock.join(&my_clock);
                // The join edge also raises visibility floors: everything
                // the finished thread stored is now the oldest observable.
                merge_view(&mut t.view, &my_view);
                t.phase = Phase::Ready;
            }
        }
        self.pick_next(&mut st, Some(my));
        self.cv.notify_all();
        if st.abort {
            drop(st);
            self.abort_exit();
        }
    }
}

/// Classify an all-parked state into a failure kind and message.
fn classify_stuck(st: &State) -> (FailureKind, String) {
    let mut parked: Vec<(usize, Wait)> = Vec::new();
    for (i, t) in st.threads.iter().enumerate() {
        if let Phase::Parked(w) = t.phase {
            parked.push((i, w));
        }
    }
    let any_cond = parked.iter().any(|(_, w)| matches!(w, Wait::Cond(_)));
    let detail: Vec<String> = parked
        .iter()
        .map(|(tid, w)| match w {
            Wait::Lock(k) => format!("t{tid} waits on mutex #{}", st.loc_name(*k)),
            Wait::Rw(k) => format!("t{tid} waits on rwlock #{}", st.loc_name(*k)),
            Wait::Cond(k) => format!("t{tid} waits on condvar #{}", st.loc_name(*k)),
            Wait::Join(t) => format!("t{tid} waits to join t{t}"),
        })
        .collect();
    if any_cond {
        (
            FailureKind::LostWakeup,
            format!("no runnable thread and a condvar waiter is parked: {}", detail.join("; ")),
        )
    } else {
        (FailureKind::Deadlock, format!("no runnable thread: {}", detail.join("; ")))
    }
}

/// Register a virtual thread for a shim-level spawn. `None` when the
/// spawner is not a model thread (pass through to plain `std`).
pub fn spawn_register() -> Option<(Arc<Sched>, usize)> {
    let (sched, _my) = cur_ctx()?;
    let tid = sched.register_thread();
    Some((sched, tid))
}

/// Body wrapper for shim-spawned model threads: waits for its first baton
/// grant, runs `f`, reports the outcome, and propagates panics (the
/// spawner's scope/join sees them exactly as with plain `std` threads).
pub fn child_main<F, T>(sched: Arc<Sched>, tid: usize, f: F) -> T
where
    F: FnOnce() -> T,
{
    match run_model_body(sched, tid, f) {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Body wrapper for explorer-owned model threads: like [`child_main`], but
/// swallows the unwind (schedule aborts are ordinary control flow for the
/// explorer; real panics are already recorded as `ModelPanic`).
pub fn run_thread<F>(sched: Arc<Sched>, tid: usize, f: F)
where
    F: FnOnce(),
{
    let _ = run_model_body(sched, tid, f);
}

/// Run `f` as model thread `tid` on the calling OS thread (used by the
/// explorer for single-rooted models). The caller must have registered
/// exactly this tid and must call `launch` itself beforehand or let this
/// root be the sole registered thread.
pub fn run_root<F, T>(sched: Arc<Sched>, tid: usize, f: F) -> Option<T>
where
    F: FnOnce() -> T,
{
    run_model_body(sched, tid, f).ok()
}

fn run_model_body<F, T>(
    sched: Arc<Sched>,
    tid: usize,
    f: F,
) -> Result<T, Box<dyn std::any::Any + Send>>
where
    F: FnOnce() -> T,
{
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), tid)));
    let _guard = CtxGuard;
    // First grant: even the first op of this thread is a scheduled one.
    {
        let st = sched.lock_state();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sched.wait_granted(st, tid)
        })) {
            Ok(_st) => {}
            Err(p) => return Err(p),
        }
    }
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sched.finish_thread(tid)
            })) {
                Ok(()) => Ok(v),
                Err(p) => Err(p),
            }
        }
        Err(payload) => {
            if payload.is::<AbortSchedule>() {
                return Err(payload);
            }
            // A real model panic: record it (first failure wins) and
            // abort so every other thread unwinds too.
            let msg = panic_message(&payload);
            let mut st = sched.lock_state();
            st.threads[tid].phase = Phase::Finished;
            sched.fail_abort(&mut st, FailureKind::ModelPanic, msg);
            drop(st);
            Err(payload)
        }
    }
}

pub(crate) fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Park until virtual thread `target` finishes, acquiring its final clock.
pub fn join_wait(target: usize) {
    let Some((sched, my)) = cur_ctx() else { return };
    let mut st = sched.lock_state();
    if !sched.bump_step(&mut st, my) {
        return;
    }
    if st.threads[target].phase == Phase::Finished {
        let tc = st.threads[target].clock.clone();
        let tv = st.threads[target].view.clone();
        st.threads[my].clock.join(&tc);
        merge_view(&mut st.threads[my].view, &tv);
    } else {
        st.threads[my].phase = Phase::Parked(Wait::Join(target));
    }
    let _ = sched.pick_and_wait(st, my);
}

/// Whether the scheduler's panic hook should silence this panic: model
/// threads unwind constantly (schedule aborts, seeded-bug assertions) and
/// their payloads are captured into the schedule outcome instead.
pub fn suppress_panic_output() -> bool {
    in_model()
}
