//! # gpf-check
//!
//! Deterministic concurrency model checking for the GPF workspace — the
//! static-analysis discipline of PR 2 (validator + gpf-lint) extended from
//! graphs and source text to *schedules and memory orderings*. Std-only,
//! like everything else in the tree.
//!
//! ## Two compilation modes
//!
//! The [`shim`] module exports the workspace's concurrency primitives
//! (`Atomic*`, `Mutex`, `RwLock`, `Condvar`, `thread::spawn`/`scope`,
//! yield points). Normally they compile to the real `std::sync` /
//! `std::thread` items — zero cost, identical codegen — so the engine's
//! perf gates are unaffected. Under `RUSTFLAGS="--cfg gpf_check"` every
//! access instead routes through a cooperative scheduler ([`rt`]) that:
//!
//! - runs **one logical thread at a time** (baton passing over real OS
//!   threads, so TLS and borrows behave exactly as in production code);
//! - turns every primitive access into an explicit **scheduling point**
//!   whose successor is chosen by the active [`explore::Explorer`];
//! - keeps a **per-location store history**, so a `Relaxed` load may
//!   observe a stale value unless a release/acquire (or SeqCst) edge
//!   forbids it — wrong orderings *actually fail* under exploration;
//! - maintains **vector clocks** for happens-before: data races on
//!   [`shim::cell::RaceCell`] state, deadlocks on the lock-wait graph,
//!   lost wakeups (all remaining threads parked), and livelocks (schedule
//!   step budget) are all reported with a replayable schedule.
//!
//! Code written against the shim runs **unmodified** in both modes:
//! `gpf_support::par`, `gpf_support::sync`, and the `gpf-trace`
//! ring/recorder/counters are checked as-is by the model tests in this
//! crate's `tests/` directory.
//!
//! ## Replay
//!
//! A failing schedule prints a `GPF_CHECK_REPLAY=<token>` line (same
//! contract as the proptest harness's `GPF_PROPTEST_REPLAY`). Re-running
//! the same test with that environment variable set replays the failing
//! schedule byte-identically: `seed:<hex>` tokens name one seeded-random
//! schedule, `path:<c0.c1...>` tokens name one exhaustive-DFS decision
//! path.
//!
//! ## Known gaps (documented approximations)
//!
//! - The memory model is an approximation: per-location store buffers +
//!   release/acquire clock joins + a global SeqCst clock. It admits stale
//!   `Relaxed`/`Acquire` reads and forbids reading overwritten-and-synced
//!   values, but does not model IRIW-style SC subtleties or fences.
//! - Only shim-routed state is visible: plain memory handed across
//!   threads by ownership transfer (move/join) is assumed correct, and
//!   `OnceLock` initialization is pass-through (init closures must not
//!   perform shim operations).
//! - RMW operations always read the newest store, per the C++ coherence
//!   rule; their release-sequence behavior is approximated by ordinary
//!   release/acquire edges.

pub mod shim;

#[cfg(gpf_check)]
pub mod rt;

#[cfg(gpf_check)]
pub mod explore;

/// `true` when the workspace was compiled with `--cfg gpf_check` (the
/// instrumented scheduler is active and [`explore`] is available).
pub const ACTIVE: bool = cfg!(gpf_check);
