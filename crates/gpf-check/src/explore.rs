//! Schedule exploration: drives many schedules of one model and turns the
//! first failing schedule into a replayable [`Failure`].
//!
//! Two modes:
//!
//! * **Exhaustive** — depth-first over the recorded decision tree with a
//!   preemption bound: rerun with a choice prefix, then backtrack the last
//!   decision that still has an untried alternative. Complete (up to the
//!   bound) for small models.
//! * **Random** — per-schedule SplitMix64 seeds derived from a base seed.
//!   Scales to models whose trees are too big to enumerate.
//!
//! Every failure carries a replay token (`seed:<hex>` or `path:c0.c1...`).
//! Setting `GPF_CHECK_REPLAY=<token>` makes the explorer run exactly that
//! schedule — byte-identical decisions — instead of exploring, so a CI
//! failure reproduces locally under a debugger. `GPF_CHECK_SCHEDULES=<n>`
//! overrides the schedule budget (both the random count and the exhaustive
//! cap), which is how CI pins the time box.

use std::sync::Arc;

use crate::rt::{self, Choice, DecisionSource, FailureKind, Outcome, Sched, SchedConfig};

/// How to explore the schedule space.
#[derive(Debug, Clone)]
pub enum Mode {
    /// DFS over recorded decisions, at most `max_preemptions` involuntary
    /// context switches per schedule, stopping after `max_schedules`.
    Exhaustive { max_preemptions: usize, max_schedules: usize },
    /// `schedules` runs with seeds derived from `seed`.
    Random { seed: u64, schedules: usize },
}

/// A configured model-checking run.
#[derive(Debug, Clone)]
pub struct Explorer {
    pub mode: Mode,
    /// Per-schedule op budget; exceeding it is a livelock failure.
    pub max_steps: usize,
    /// When set, run exactly this schedule instead of exploring
    /// (programmatic equivalent of `GPF_CHECK_REPLAY`).
    pub replay: Option<DecisionSource>,
}

/// Summary of a passing exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Schedules actually run.
    pub schedules: usize,
    /// True iff exhaustive mode enumerated the entire (bounded) tree.
    pub complete: bool,
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    /// Replay token: pass via `GPF_CHECK_REPLAY` to rerun this schedule.
    pub replay: String,
    /// 1-based index of the failing schedule within this exploration.
    pub schedule: usize,
    /// Model name (for the report).
    pub name: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "gpf-check FAILURE [{}] in model '{}' (schedule {}): {}",
            self.kind, self.name, self.schedule, self.message
        )?;
        write!(
            f,
            "  replay: GPF_CHECK_REPLAY={} RUSTFLAGS=\"--cfg gpf_check\" cargo test -p gpf-check -- {}",
            self.replay, self.name
        )
    }
}

impl Explorer {
    /// Exhaustive DFS with the given preemption bound and default budgets.
    pub fn exhaustive(max_preemptions: usize) -> Self {
        Self {
            mode: Mode::Exhaustive { max_preemptions, max_schedules: 100_000 },
            max_steps: 20_000,
            replay: None,
        }
    }

    /// Seeded-random exploration.
    pub fn random(seed: u64, schedules: usize) -> Self {
        Self { mode: Mode::Random { seed, schedules }, max_steps: 20_000, replay: None }
    }

    /// Override the per-schedule op budget.
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Replay one specific schedule from a failure's token (`None` if the
    /// token is malformed).
    pub fn with_replay(mut self, token: &str) -> Option<Self> {
        self.replay = Some(parse_replay(token)?);
        Some(self)
    }

    /// Check a single-rooted model: `f` runs as model thread 0 (on the
    /// calling OS thread) and may spawn further model threads through the
    /// shim. Called once per schedule.
    pub fn check<F>(&self, name: &str, f: F) -> Result<Report, Failure>
    where
        F: Fn(),
    {
        install_panic_filter();
        self.drive(name, &|source| {
            let sched = Sched::new(self.config(source));
            let tid = sched.register_thread();
            sched.launch();
            let _ = rt::run_root(Arc::clone(&sched), tid, &f);
            sched.outcome()
        })
    }

    /// Check a model given as N peer thread bodies. The calling thread is
    /// *not* a model thread, so the decision tree is exactly the set of
    /// interleavings of the bodies' ops.
    pub fn check_threads(&self, name: &str, bodies: &[&(dyn Fn() + Sync)]) -> Result<Report, Failure> {
        install_panic_filter();
        self.drive(name, &|source| {
            let sched = Sched::new(self.config(source));
            let tids: Vec<usize> = bodies.iter().map(|_| sched.register_thread()).collect();
            std::thread::scope(|s| {
                let handles: Vec<_> = bodies
                    .iter()
                    .zip(&tids)
                    .map(|(body, tid)| {
                        let sched = Arc::clone(&sched);
                        let tid = *tid;
                        s.spawn(move || rt::run_thread(sched, tid, || body()))
                    })
                    .collect();
                sched.launch();
                for h in handles {
                    let _ = h.join();
                }
            });
            sched.outcome()
        })
    }

    fn config(&self, decisions: DecisionSource) -> SchedConfig {
        let max_preemptions = match self.mode {
            Mode::Exhaustive { max_preemptions, .. } => Some(max_preemptions),
            Mode::Random { .. } => None,
        };
        SchedConfig { max_steps: self.max_steps, max_preemptions, decisions }
    }

    fn drive(&self, name: &str, run: &dyn Fn(DecisionSource) -> Outcome) -> Result<Report, Failure> {
        if let Some(source) = self.replay.clone().or_else(replay_source) {
            let token = replay_token_of(&source);
            let outcome = run(source);
            return match outcome.failure {
                Some(f) => Err(Failure {
                    kind: f.kind,
                    message: f.message,
                    replay: token,
                    schedule: 1,
                    name: name.to_string(),
                }),
                None => Ok(Report { schedules: 1, complete: false }),
            };
        }
        match self.mode {
            Mode::Exhaustive { max_schedules, .. } => {
                let cap = env_schedules().unwrap_or(max_schedules);
                self.drive_exhaustive(name, run, cap)
            }
            Mode::Random { seed, schedules } => {
                let n = env_schedules().unwrap_or(schedules);
                self.drive_random(name, run, seed, n)
            }
        }
    }

    fn drive_exhaustive(
        &self,
        name: &str,
        run: &dyn Fn(DecisionSource) -> Outcome,
        max_schedules: usize,
    ) -> Result<Report, Failure> {
        let mut prefix: Vec<u32> = Vec::new();
        let mut schedules = 0usize;
        loop {
            let outcome = run(DecisionSource::Prefix(prefix.clone()));
            schedules += 1;
            if let Some(f) = outcome.failure {
                return Err(Failure {
                    kind: f.kind,
                    message: f.message,
                    replay: path_token(&outcome.choices),
                    schedule: schedules,
                    name: name.to_string(),
                });
            }
            // Backtrack: drop trailing fully-explored decisions, advance
            // the deepest one that still has an untried alternative.
            let mut choices = outcome.choices;
            let mut advanced = false;
            while let Some(c) = choices.pop() {
                if c.chosen + 1 < c.n {
                    choices.push(Choice { n: c.n, chosen: c.chosen + 1 });
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return Ok(Report { schedules, complete: true });
            }
            if schedules >= max_schedules {
                return Ok(Report { schedules, complete: false });
            }
            prefix = choices.iter().map(|c| c.chosen).collect();
        }
    }

    fn drive_random(
        &self,
        name: &str,
        run: &dyn Fn(DecisionSource) -> Outcome,
        seed: u64,
        schedules: usize,
    ) -> Result<Report, Failure> {
        for i in 0..schedules {
            let mut s = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let sched_seed = rt::splitmix64(&mut s);
            let outcome = run(DecisionSource::Random(sched_seed));
            if let Some(f) = outcome.failure {
                return Err(Failure {
                    kind: f.kind,
                    message: f.message,
                    replay: format!("seed:{sched_seed:016x}"),
                    schedule: i + 1,
                    name: name.to_string(),
                });
            }
        }
        Ok(Report { schedules, complete: false })
    }
}

/// Parse a replay token (`seed:<hex>` or `path:c0.c1...`).
pub fn parse_replay(token: &str) -> Option<DecisionSource> {
    if let Some(hex) = token.strip_prefix("seed:") {
        return u64::from_str_radix(hex, 16).ok().map(DecisionSource::Random);
    }
    if let Some(path) = token.strip_prefix("path:") {
        if path.is_empty() {
            return Some(DecisionSource::Prefix(Vec::new()));
        }
        return path
            .split('.')
            .map(|c| c.parse::<u32>().ok())
            .collect::<Option<Vec<u32>>>()
            .map(DecisionSource::Prefix);
    }
    None
}

fn path_token(choices: &[Choice]) -> String {
    let parts: Vec<String> = choices.iter().map(|c| c.chosen.to_string()).collect();
    format!("path:{}", parts.join("."))
}

fn replay_token_of(source: &DecisionSource) -> String {
    match source {
        DecisionSource::Random(seed) => format!("seed:{seed:016x}"),
        DecisionSource::Prefix(p) => {
            let parts: Vec<String> = p.iter().map(|c| c.to_string()).collect();
            format!("path:{}", parts.join("."))
        }
    }
}

fn replay_source() -> Option<DecisionSource> {
    let token = std::env::var("GPF_CHECK_REPLAY").ok()?;
    let parsed = parse_replay(&token);
    if parsed.is_none() {
        // gpf-lint: allow(no-raw-print): operator-facing diagnostic for a
        // malformed env token; the trace sink may not be initialised here.
        eprintln!("gpf-check: ignoring malformed GPF_CHECK_REPLAY token {token:?}");
    }
    parsed
}

fn env_schedules() -> Option<usize> {
    std::env::var("GPF_CHECK_SCHEDULES").ok()?.parse().ok()
}

/// Model threads unwind on purpose (schedule aborts, seeded-bug
/// assertions); without a filter the default panic hook floods stderr
/// with thousands of backtraces. Install once, delegating non-model
/// panics to the previous hook untouched.
fn install_panic_filter() {
    use std::sync::OnceLock;
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if rt::suppress_panic_output() {
                return;
            }
            prev(info);
        }));
    });
}
