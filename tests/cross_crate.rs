//! Cross-crate integration tests over the `gpf` facade: GPF vs the
//! Churchill comparator, failure injection, and engine counterfactual
//! invariants on real pipeline recordings.

use gpf::baselines::churchill::ChurchillPipeline;
use gpf::core::prelude::*;
use gpf::engine::sim::{blocked_time, simulate};
use gpf::engine::{Dataset, EngineConfig, EngineContext, SimCluster, SimOptions};
use gpf::workloads::readsim::{simulate_fastq_pairs, SimulatorConfig};
use gpf::workloads::refgen::ReferenceSpec;
use gpf::workloads::variants::{DonorGenome, VariantSpec};
use std::sync::Arc;

fn workload() -> (
    Arc<gpf::formats::ReferenceGenome>,
    DonorGenome,
    Vec<gpf::formats::FastqPair>,
    Vec<gpf::formats::vcf::VcfRecord>,
) {
    let reference = Arc::new(
        ReferenceSpec { contig_lengths: vec![60_000], seed: 808, ..Default::default() }.generate(),
    );
    let donor = DonorGenome::generate(
        &reference,
        &VariantSpec { snv_rate: 1e-3, indel_rate: 5e-5, seed: 4, ..Default::default() },
    );
    let pairs = simulate_fastq_pairs(
        &reference,
        &donor,
        SimulatorConfig { coverage: 22.0, duplicate_rate: 0.08, hotspot_count: 1, ..Default::default() },
    );
    let known = donor.known_sites(&reference, 0.8, 15, 3);
    (reference, donor, pairs, known)
}

/// GPF and Churchill are different systems running the same algorithms —
/// their call sets must largely agree (both recover the planted variants).
#[test]
fn gpf_and_churchill_call_consistent_variants() {
    let (reference, donor, pairs, known) = workload();

    // GPF (through the Pipeline runtime).
    let ctx = EngineContext::new(EngineConfig::gpf().with_parallelism(24));
    let mut pipeline = Pipeline::new("wgs", Arc::clone(&ctx));
    let dict = reference.dict().clone();
    let fastq = FastqPairBundle::defined(
        "fq",
        Dataset::from_vec(Arc::clone(&ctx), pairs.clone(), 24),
    );
    let dbsnp = VcfBundle::defined(
        "dbsnp",
        VcfHeaderInfo::new_header(dict.clone(), vec![]),
        Dataset::from_vec(Arc::clone(&ctx), known.clone(), 24),
    );
    let aligned = SamBundle::undefined("aligned", SamHeaderInfo::unsorted_header(dict.clone()));
    pipeline.add_process(BwaMemProcess::pair_end(
        "align",
        Arc::clone(&reference),
        fastq,
        Arc::clone(&aligned),
    ));
    let deduped = SamBundle::undefined("deduped", SamHeaderInfo::unsorted_header(dict.clone()));
    pipeline.add_process(MarkDuplicateProcess::new("dedup", aligned, Arc::clone(&deduped)));
    let pinfo = PartitionInfoBundle::undefined("pinfo");
    pipeline.add_process(ReadRepartitioner::new(
        "repart",
        vec![Arc::clone(&deduped)],
        Arc::clone(&pinfo),
        reference.dict().lengths(),
        4_000,
    ));
    let vcf = VcfBundle::undefined("vcf", VcfHeaderInfo::new_header(dict, vec!["s".into()]));
    pipeline.add_process(HaplotypeCallerProcess::new(
        "call",
        Arc::clone(&reference),
        Some(dbsnp),
        pinfo,
        deduped,
        Arc::clone(&vcf),
        false,
    ));
    pipeline.run().expect("gpf pipeline executes");
    let gpf_calls = vcf.dataset().collect_local();

    // Churchill on the same inputs.
    let churchill = ChurchillPipeline::new(Arc::clone(&reference), 6_000, 12);
    let (ch_calls, ch_run) = churchill.run(&pairs, &known);

    assert!(!gpf_calls.is_empty() && !ch_calls.is_empty());
    // Agreement: most GPF SNV calls appear in Churchill's set (±1bp).
    let snvs: Vec<_> = gpf_calls.iter().filter(|c| c.is_snv()).collect();
    let agree = snvs
        .iter()
        .filter(|g| ch_calls.iter().any(|c| c.contig == g.contig && c.pos.abs_diff(g.pos) <= 1))
        .count();
    assert!(
        agree as f64 / snvs.len().max(1) as f64 > 0.7,
        "agreement {agree}/{}",
        snvs.len()
    );
    // Both recover a majority of planted truth.
    for calls in [&gpf_calls, &ch_calls] {
        let recalled = donor
            .truth
            .iter()
            .filter(|t| calls.iter().any(|c| c.contig == t.pos.contig && c.pos.abs_diff(t.pos.pos) <= 1))
            .count();
        assert!(recalled * 2 > donor.truth.len(), "recall {recalled}/{}", donor.truth.len());
    }
    // Churchill's profile is disk-heavy (file handoffs between every step).
    assert!(ch_run.total_shuffle_bytes() > 0);
}

/// Malformed FASTQ input fails loudly at the loader, not deep in a Process.
#[test]
fn malformed_fastq_is_rejected_at_load() {
    let ctx = EngineContext::new(EngineConfig::gpf());
    let bad = "@read1\nACGT\nIIII\n"; // missing '+' separator
    match FileLoader::load_fastq_pair_to_rdd(&ctx, bad, bad, 2) {
        Err(gpf::core::PipelineError::Load(msg)) => assert!(msg.contains('+')),
        _ => panic!("expected a load error"),
    }
}

/// A circular Process graph is refused up front by the static validator,
/// with the actual cycle path in the diagnostic and the Algorithm-1
/// "circular dependency" wording preserved in the Display.
#[test]
fn circular_pipeline_is_detected() {
    let ctx = EngineContext::new(EngineConfig::gpf());
    let dict = gpf::formats::ContigDict::from_pairs([("chr1", 1_000u64)]);
    let a = SamBundle::undefined("a", SamHeaderInfo::unsorted_header(dict.clone()));
    let b = SamBundle::undefined("b", SamHeaderInfo::unsorted_header(dict.clone()));
    let mut pipeline = Pipeline::new("circular", ctx);
    pipeline.add_process(MarkDuplicateProcess::new("x", Arc::clone(&a), Arc::clone(&b)));
    pipeline.add_process(MarkDuplicateProcess::new("y", b, a));
    match pipeline.run() {
        Err(ref err @ gpf::core::PipelineError::Invalid(ref diags)) => {
            let cycle = diags
                .iter()
                .find_map(|d| match d.kind() {
                    gpf::core::DiagnosticKind::Cycle { path } => Some(path.clone()),
                    _ => None,
                })
                .expect("cycle diagnostic");
            // x -[b]-> y -[a]-> x: alternating path closing on itself.
            assert_eq!(cycle.len(), 5);
            assert_eq!(cycle.first(), cycle.last());
            // Compatibility Display still names the stuck Processes.
            let text = err.to_string();
            assert!(text.contains("circular dependency among processes:"), "{text}");
        }
        other => panic!("expected invalid-pipeline error, got {other:?}"),
    }
}

/// Simulator invariants on a real recorded pipeline: monotone in cores,
/// counterfactuals never exceed the baseline, utilization bounded.
#[test]
fn simulator_invariants_on_real_recording() {
    let (reference, _donor, pairs, known) = workload();
    let churchill = ChurchillPipeline::new(Arc::clone(&reference), 6_000, 16);
    let (_, run) = churchill.run(&pairs, &known);
    let opts = SimOptions::default();
    let mut last = f64::INFINITY;
    for cores in [64usize, 128, 256, 512, 1024] {
        let sim = simulate(&run, &SimCluster::paper_cluster(cores), &opts);
        assert!(sim.makespan_s <= last + 1e-9, "monotone at {cores}");
        assert!(sim.timeline.iter().all(|b| b.cpu_util <= 1.0 + 1e-9));
        last = sim.makespan_s;
    }
    let rep = blocked_time(&run, &SimCluster::paper_cluster(256), &opts);
    assert!(rep.without_disk_s <= rep.base_s);
    assert!(rep.without_net_s <= rep.base_s);
}

/// The GPF serializer keeps whole-pipeline shuffle volume below Kryo's.
#[test]
fn gpf_serializer_beats_kryo_on_pipeline_shuffles() {
    let (reference, _donor, pairs, _) = workload();
    let volumes: Vec<u64> = [EngineConfig::gpf(), EngineConfig::kryo()]
        .into_iter()
        .map(|cfg| {
            let ctx = EngineContext::new(cfg.with_parallelism(16));
            let aligner = gpf::align::BwaMemAligner::new(&reference);
            let ds = Dataset::from_vec(Arc::clone(&ctx), pairs.clone(), 16);
            let aligned = ds.flat_map(move |p| {
                let (a, b) = aligner.align_pair(p);
                [a, b]
            });
            let nparts = 16;
            let _ = aligned
                .map(|r| (r.pos, r.clone()))
                .partition_by_key(nparts, move |k: &u64| (*k % nparts as u64) as usize);
            ctx.take_run().total_shuffle_bytes()
        })
        .collect();
    assert!(volumes[0] < volumes[1], "gpf {} < kryo {}", volumes[0], volumes[1]);
}
