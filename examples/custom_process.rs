//! Extending GPF with a custom Process.
//!
//! The paper's programming model (§3) is open: "users only need to define
//! instances of both Process and Resource according to the sequential
//! analysis algorithm". This example adds a `CoverageStatsProcess` — a
//! Process computing per-contig depth-of-coverage statistics from a SAM
//! bundle — and schedules it in a pipeline next to the built-in stages,
//! letting the Algorithm-1 DAG scheduler work out the ordering.
//!
//! ```sh
//! cargo run --release --example custom_process
//! ```

use gpf::core::prelude::*;
use gpf::core::process::Process;
use gpf::core::resource::{DataBundle, ResourceAny};
use gpf::engine::{Dataset, EngineConfig, EngineContext};
use gpf::workloads::readsim::{simulate_fastq_pairs, SimulatorConfig};
use gpf::workloads::refgen::ReferenceSpec;
use gpf::workloads::variants::{DonorGenome, VariantSpec};
use std::sync::Arc;

/// Per-contig coverage summary (our custom Resource payload).
#[derive(Debug, Clone, PartialEq)]
struct ContigCoverage {
    contig: u32,
    mean_depth: f64,
    max_depth: u64,
    covered_fraction: f64,
}

// Make the payload shuffle-safe so it can live in an engine dataset.
impl gpf::compress::GpfSerialize for ContigCoverage {
    fn write(&self, w: &mut gpf::compress::ByteWriter) {
        w.write_u32(self.contig);
        w.write_f64(self.mean_depth);
        w.write_u64(self.max_depth);
        w.write_f64(self.covered_fraction);
    }
    fn read(r: &mut gpf::compress::ByteReader<'_>) -> Result<Self, gpf::compress::CodecError> {
        Ok(Self {
            contig: r.read_u32()?,
            mean_depth: r.read_f64()?,
            max_depth: r.read_u64()?,
            covered_fraction: r.read_f64()?,
        })
    }
}

/// The custom Process: SAM bundle in, coverage stats out.
struct CoverageStatsProcess {
    name: String,
    reference: Arc<gpf::formats::ReferenceGenome>,
    input: Arc<SamBundle>,
    output: Arc<DataBundle<ContigCoverage>>,
}

impl Process for CoverageStatsProcess {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_resources(&self) -> Vec<Arc<dyn ResourceAny>> {
        vec![self.input.clone()]
    }
    fn output_resources(&self) -> Vec<Arc<dyn ResourceAny>> {
        vec![self.output.clone()]
    }
    fn execute(&self, ctx: &Arc<EngineContext>) {
        ctx.set_phase("coverage");
        let n_contigs = self.reference.dict().len();
        let lengths = self.reference.dict().lengths();
        let ds = self.input.dataset();
        // Depth per contig: reduce (contig, covered bases) across partitions,
        // then summarize per contig in a final pass.
        let per_contig = ds
            .filter(|r| r.flags.is_mapped())
            .map(|r| (r.contig, r.cigar.ref_span()))
            .reduce_by_key(n_contigs, |a, b| a + b);
        let stats = per_contig.map_partitions_with_index(move |_, part| {
            part.iter()
                .map(|&(contig, bases)| {
                    let len = lengths[contig as usize] as f64;
                    ContigCoverage {
                        contig,
                        mean_depth: bases as f64 / len,
                        max_depth: bases, // refined below; demo keeps it simple
                        covered_fraction: (bases as f64 / len).min(1.0),
                    }
                })
                .collect()
        });
        self.output.define(stats);
    }
}

fn main() {
    let reference = Arc::new(ReferenceSpec::small(3).generate());
    let donor = DonorGenome::generate(&reference, &VariantSpec::default());
    let pairs = simulate_fastq_pairs(
        &reference,
        &donor,
        SimulatorConfig { coverage: 10.0, ..Default::default() },
    );

    let ctx = EngineContext::new(EngineConfig::gpf().with_parallelism(32));
    let mut pipeline = Pipeline::new("coveragePipeline", Arc::clone(&ctx));
    let dict = reference.dict().clone();

    let fastq = FastqPairBundle::defined(
        "fastqPair",
        Dataset::from_vec(Arc::clone(&ctx), pairs, 32),
    );
    let aligned = SamBundle::undefined("alignedSam", SamHeaderInfo::unsorted_header(dict));
    pipeline.add_process(BwaMemProcess::pair_end(
        "Align",
        Arc::clone(&reference),
        fastq,
        Arc::clone(&aligned),
    ));

    // Note the add order: the custom Process is added FIRST; the DAG
    // scheduler still runs it after the aligner because its input resource
    // is the aligner's output.
    let coverage_out: Arc<DataBundle<ContigCoverage>> = DataBundle::undefined("coverageStats");
    let mut reordered = Pipeline::new("coveragePipeline", Arc::clone(&ctx));
    reordered.add_process(Arc::new(CoverageStatsProcess {
        name: "CoverageStats".into(),
        reference: Arc::clone(&reference),
        input: Arc::clone(&aligned),
        output: Arc::clone(&coverage_out),
    }));
    for p in [pipeline] {
        // Move the aligner process over (demo convenience).
        drop(p);
    }
    reordered.add_process(BwaMemProcess::pair_end(
        "Align",
        Arc::clone(&reference),
        FastqPairBundle::defined(
            "fastqPair2",
            Dataset::from_vec(
                Arc::clone(&ctx),
                simulate_fastq_pairs(
                    &reference,
                    &donor,
                    SimulatorConfig { coverage: 10.0, ..Default::default() },
                ),
                32,
            ),
        ),
        Arc::clone(&aligned),
    ));
    reordered.run().expect("pipeline executes");
    println!("execution order: {:?}", reordered.executed());

    let mut stats = coverage_out.dataset().collect_local();
    stats.sort_by_key(|s| s.contig);
    println!("\nper-contig coverage:");
    for s in &stats {
        println!(
            "  {}: mean depth {:.1}x, covered {:.0}%",
            reference.dict().name_of(s.contig),
            s.mean_depth,
            100.0 * s.covered_fraction
        );
    }
}
