//! Scaling study: record one real pipeline execution, then replay it on
//! simulated clusters of growing size — a miniature of the paper's
//! Figure 10 plus the Figure 12 blocked-time analysis.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use gpf::engine::sim::{blocked_time, simulate};
use gpf::engine::{SimCluster, SimOptions};
use gpf_bench_like::*;

/// Minimal local reimplementation of the bench workload so the example has
/// no dev-only dependencies.
mod gpf_bench_like {
    use gpf::align::BwaMemAligner;
    use gpf::caller::HaplotypeCaller;
    use gpf::cleaner::{coordinate_sort, mark_duplicates};
    use gpf::engine::{Dataset, EngineConfig, EngineContext, JobRun};
    use gpf::workloads::readsim::{simulate_fastq_pairs, SimulatorConfig};
    use gpf::workloads::refgen::ReferenceSpec;
    use gpf::workloads::variants::{DonorGenome, VariantSpec};
    use std::sync::Arc;

    /// Run a compact align → dedup → call job and return its recording.
    pub fn record_compact_wgs() -> JobRun {
        let reference = Arc::new(
            ReferenceSpec { contig_lengths: vec![250_000, 150_000], seed: 1, ..Default::default() }
                .generate(),
        );
        let donor = DonorGenome::generate(&reference, &VariantSpec::default());
        let pairs = simulate_fastq_pairs(
            &reference,
            &donor,
            SimulatorConfig { coverage: 12.0, hotspot_count: 1, ..Default::default() },
        );
        let ctx = EngineContext::new(EngineConfig::gpf().with_parallelism(512));
        ctx.set_phase("aligner");
        let aligner = Arc::new(BwaMemAligner::new(&reference));
        let fastq = Dataset::from_vec(Arc::clone(&ctx), pairs, 512);
        let aligned = fastq.flat_map(move |p| {
            let (a, b) = aligner.align_pair(p);
            [a, b]
        });
        ctx.set_phase("cleaner");
        let nparts = 512;
        let deduped = aligned
            .map(|r| {
                let key = (r.contig, r.pos).min((r.mate_contig, r.mate_pos));
                ((key.0 as u64) << 40 | key.1, r.clone())
            })
            .partition_by_key(nparts, move |k: &u64| {
                (gpf::engine::dataset::stable_hash(k) % nparts as u64) as usize
            })
            .map_partitions(|part| {
                let mut records: Vec<_> = part.iter().map(|(_, r)| r.clone()).collect();
                mark_duplicates(&mut records);
                records
            });
        ctx.set_phase("caller");
        let reference2 = Arc::clone(&reference);
        let _calls = deduped.map_partitions(move |records| {
            let mut sorted = records.to_vec();
            coordinate_sort(&mut sorted);
            HaplotypeCaller::default().call(&sorted, &reference2)
        });
        ctx.take_run()
    }
}

fn main() {
    println!("recording one real pipeline execution...");
    let run = record_compact_wgs();
    println!(
        "recorded {} stages, {:.1} core-s CPU, {:.1} MiB shuffled\n",
        run.num_stages(),
        run.total_cpu_s(),
        run.total_shuffle_bytes() as f64 / (1 << 20) as f64
    );

    println!("{:<8} {:>12} {:>10} {:>12}", "cores", "time (s)", "speedup", "efficiency");
    let opts = SimOptions::default();
    let base = simulate(&run, &SimCluster::paper_cluster(128), &opts).makespan_s;
    for cores in [128usize, 256, 512, 1024, 2048] {
        let t = simulate(&run, &SimCluster::paper_cluster(cores), &opts).makespan_s;
        let speedup = base / t;
        println!(
            "{:<8} {:>12.3} {:>9.2}x {:>11.0}%",
            cores,
            t,
            speedup,
            100.0 * speedup * 128.0 / cores as f64
        );
    }

    let rep = blocked_time(&run, &SimCluster::paper_cluster(1024), &opts);
    println!(
        "\nblocked-time analysis @1024 cores: removing ALL disk time buys {:.1}%, \
         all network time {:.1}% — the job is CPU-bound, §5.3's conclusion.",
        100.0 * rep.disk_improvement(),
        100.0 * rep.net_improvement()
    );
}
