//! Compression tour: the §4.2 genomic codecs, field by field.
//!
//! Demonstrates 2-bit sequence packing with the N-escape (Figure 4), quality
//! delta + Huffman coding (Figures 5–6), and the serializer family the
//! engine shuffles with — reproducing the Table 3 measurement on a simulated
//! read batch.
//!
//! ```sh
//! cargo run --release --example compression_tour
//! ```

use gpf::compress::qualcodec::{delta_histogram, histogram_delta, QualityCodec};
use gpf::compress::sequence::compress_read_fields;
use gpf::compress::serializer::{serialize_batch, SerializerKind};
use gpf::workloads::quality::QualityProfile;
use gpf_formats::fastq::FastqRecord;
use gpf_support::rng::StdRng;
use gpf_support::rng::{Rng, SeedableRng};

fn main() {
    // --- Figure 4: one read through the sequence codec. ------------------
    let seq = b"GGTTNCCTA";
    let qual = b"CCCB#FFFF";
    let codec = QualityCodec::default_codec();
    let c = compress_read_fields(seq, qual, &codec).expect("valid read");
    println!("Figure 4 example:");
    println!("  sequence {} + quality {}", "GGTTNCCTA", "CCCB#FFFF");
    println!(
        "  packed bits: {:08b} {:08b} {:08b}  (2-bit codes, N escaped through quality)",
        c.packed_seq[0], c.packed_seq[1], c.packed_seq[2]
    );
    println!(
        "  9 bases + 9 quality chars = 18 bytes -> {} payload bytes",
        c.payload_bytes()
    );

    // --- Figure 5: delta concentration on simulated quality strings. -----
    let mut rng = StdRng::seed_from_u64(42);
    let profile = QualityProfile::srr622461_like();
    let quals: Vec<Vec<u8>> = (0..2000).map(|_| profile.sample(100, &mut rng)).collect();
    let refs: Vec<&[u8]> = quals.iter().map(|q| q.as_slice()).collect();
    let hist = delta_histogram(refs.iter().copied());
    let total: u64 = hist.iter().sum();
    println!("\nFigure 5(b) adjacent-delta histogram ({} transitions):", total);
    for (i, &count) in hist.iter().enumerate() {
        let d = histogram_delta(i);
        if (-3..=3).contains(&d) {
            let pct = 100.0 * count as f64 / total as f64;
            println!("  delta {d:>3}: {pct:5.1}%  {}", "#".repeat((pct / 2.0) as usize));
        }
    }

    // --- Quality codec on the batch. --------------------------------------
    let encoded: usize = refs.iter().map(|q| codec.encode_to_bytes(q).unwrap().len()).sum();
    let raw: usize = refs.iter().map(|q| q.len()).sum();
    println!(
        "\nquality codec: {raw} raw bytes -> {encoded} encoded ({:.2} bits/char)",
        8.0 * encoded as f64 / raw as f64
    );

    // --- Table 3: serializer family on realistic reads. -------------------
    let records: Vec<FastqRecord> = quals
        .iter()
        .enumerate()
        .take(1000)
        .map(|(i, q)| {
            let seq: Vec<u8> = (0..q.len())
                .map(|_| if rng.gen_bool(0.002) { b'N' } else { b"ACGT"[rng.gen_range(0..4)] })
                .collect();
            let mut q = q.clone();
            for (qc, s) in q.iter_mut().zip(&seq) {
                if *s == b'N' {
                    *qc = 33;
                }
            }
            FastqRecord::new(format!("SRR622461.{i}"), &seq, &q).expect("valid read")
        })
        .collect();
    println!("\nserializer family over {} 100bp reads (Table 3 mechanism):", records.len());
    let gpf_size = serialize_batch(SerializerKind::Gpf, &records).len();
    for kind in [SerializerKind::JavaSim, SerializerKind::KryoSim, SerializerKind::Gpf] {
        let size = serialize_batch(kind, &records).len();
        println!(
            "  {kind:?}: {size:>8} bytes ({:.1} B/read, {:.2}x vs GPF)",
            size as f64 / records.len() as f64,
            size as f64 / gpf_size as f64
        );
    }
    println!("\npaper Table 3 reports 20.0->11.1 GB on the FASTQ-loading stage: same shape.");
}
