//! Full WGS pipeline with the redundancy-elimination optimizer toggled —
//! the paper's Table 4 experiment as a runnable walkthrough, including
//! validation against the planted ground truth.
//!
//! ```sh
//! cargo run --release --example wgs_pipeline
//! ```

use gpf::core::prelude::*;
use gpf::engine::{Dataset, EngineConfig, EngineContext, JobRun};
use gpf::workloads::readsim::{simulate_fastq_pairs, SimulatorConfig};
use gpf::workloads::refgen::ReferenceSpec;
use gpf::workloads::variants::{DonorGenome, PlantedVariant, VariantSpec};
use std::sync::Arc;

fn build_and_run(
    reference: &Arc<gpf::formats::ReferenceGenome>,
    pairs: &[gpf::formats::FastqPair],
    known: &[gpf::formats::vcf::VcfRecord],
    optimize: bool,
) -> (Vec<gpf::formats::vcf::VcfRecord>, JobRun, usize) {
    let ctx = EngineContext::new(EngineConfig::gpf().with_parallelism(96));
    let mut pipeline = Pipeline::new("wgs", Arc::clone(&ctx));
    pipeline.set_optimize(optimize);
    let dict = reference.dict().clone();

    let fastq = FastqPairBundle::defined(
        "fastqPair",
        Dataset::from_vec(Arc::clone(&ctx), pairs.to_vec(), 96),
    );
    let dbsnp = VcfBundle::defined(
        "dbsnp",
        VcfHeaderInfo::new_header(dict.clone(), vec![]),
        Dataset::from_vec(Arc::clone(&ctx), known.to_vec(), 96),
    );

    let aligned = SamBundle::undefined("aligned", SamHeaderInfo::unsorted_header(dict.clone()));
    pipeline.add_process(BwaMemProcess::pair_end(
        "Align",
        Arc::clone(reference),
        fastq,
        Arc::clone(&aligned),
    ));
    let deduped = SamBundle::undefined("deduped", SamHeaderInfo::unsorted_header(dict.clone()));
    pipeline.add_process(MarkDuplicateProcess::new("Dedup", aligned, Arc::clone(&deduped)));
    let pinfo = PartitionInfoBundle::undefined("pinfo");
    pipeline.add_process(ReadRepartitioner::new(
        "Repartition",
        vec![Arc::clone(&deduped)],
        Arc::clone(&pinfo),
        reference.dict().lengths(),
        3_000,
    ));
    let realigned = SamBundle::undefined("realigned", SamHeaderInfo::unsorted_header(dict.clone()));
    pipeline.add_process(IndelRealignProcess::new(
        "Realign",
        Arc::clone(reference),
        Some(Arc::clone(&dbsnp)),
        Arc::clone(&pinfo),
        deduped,
        Arc::clone(&realigned),
    ));
    let recaled = SamBundle::undefined("recaled", SamHeaderInfo::unsorted_header(dict.clone()));
    pipeline.add_process(BaseRecalibrationProcess::new(
        "BQSR",
        Arc::clone(reference),
        Some(Arc::clone(&dbsnp)),
        Arc::clone(&pinfo),
        realigned,
        Arc::clone(&recaled),
    ));
    let vcf = VcfBundle::undefined("vcf", VcfHeaderInfo::new_header(dict, vec!["s".into()]));
    pipeline.add_process(HaplotypeCallerProcess::new(
        "Call",
        Arc::clone(reference),
        Some(dbsnp),
        pinfo,
        recaled,
        Arc::clone(&vcf),
        false,
    ));
    pipeline.run().expect("pipeline executes");
    (vcf.dataset().collect_local(), ctx.take_run(), pipeline.fused_chains().len())
}

fn score(truth: &[PlantedVariant], calls: &[gpf::formats::vcf::VcfRecord]) -> (f64, f64) {
    let recalled = truth
        .iter()
        .filter(|t| calls.iter().any(|c| c.contig == t.pos.contig && c.pos.abs_diff(t.pos.pos) <= 1))
        .count();
    let correct = calls
        .iter()
        .filter(|c| truth.iter().any(|t| t.pos.contig == c.contig && c.pos.abs_diff(t.pos.pos) <= 1))
        .count();
    (
        recalled as f64 / truth.len().max(1) as f64,
        correct as f64 / calls.len().max(1) as f64,
    )
}

fn main() {
    let reference = Arc::new(
        ReferenceSpec { contig_lengths: vec![150_000, 100_000], seed: 11, ..Default::default() }
            .generate(),
    );
    let donor = DonorGenome::generate(&reference, &VariantSpec::default());
    let pairs = simulate_fastq_pairs(
        &reference,
        &donor,
        SimulatorConfig { coverage: 20.0, duplicate_rate: 0.1, ..Default::default() },
    );
    let known = donor.known_sites(&reference, 0.8, 30, 5);
    println!(
        "workload: {} bp genome at 20x ({} pairs), {} planted variants\n",
        reference.genome_length(),
        pairs.len(),
        donor.truth.len()
    );

    println!("running WITH redundancy elimination (Figure 7(b))...");
    let (calls_opt, run_opt, fused) = build_and_run(&reference, &pairs, &known, true);
    println!("running WITHOUT (Figure 7(a))...");
    let (calls_raw, run_raw, _) = build_and_run(&reference, &pairs, &known, false);

    let (recall, precision) = score(&donor.truth, &calls_opt);
    println!("\ncalls: {} (recall {:.0}%, precision {:.0}%)", calls_opt.len(), recall * 100.0, precision * 100.0);
    assert_eq!(calls_opt.len(), calls_raw.len(), "optimization must not change results");

    println!("\nTable 4 (this machine):");
    println!("{:<16} {:>12} {:>12}", "metric", "optimized", "original");
    println!("{:<16} {:>12} {:>12}", "stages", run_opt.num_stages(), run_raw.num_stages());
    println!(
        "{:<16} {:>10.1} MiB {:>10.1} MiB",
        "shuffle data",
        run_opt.total_shuffle_bytes() as f64 / (1 << 20) as f64,
        run_raw.total_shuffle_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "{:<16} {:>10.2} s {:>12.2} s",
        "task CPU",
        run_opt.total_cpu_s(),
        run_raw.total_cpu_s()
    );
    println!("\nfused chains: {fused} — the Cleaner/Caller bundle stages share one bundled RDD.");
}
