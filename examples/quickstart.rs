//! Quickstart: the paper's Figure 3 program, end to end, in two minutes.
//!
//! Builds a tiny synthetic genome, simulates paired-end reads, and runs the
//! full GPF pipeline — Aligner (BWA-MEM-like), Cleaner (MarkDuplicate,
//! IndelRealign, BQSR), Caller (HaplotypeCaller-like) — through the
//! Process/Resource/Pipeline programming model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpf::core::prelude::*;
use gpf::engine::{Dataset, EngineConfig, EngineContext};
use gpf::formats::vcf::format_vcf;
use gpf::workloads::readsim::{simulate_fastq_pairs, SimulatorConfig};
use gpf::workloads::refgen::ReferenceSpec;
use gpf::workloads::variants::{DonorGenome, VariantSpec};
use std::sync::Arc;

fn main() {
    // --- Workload: synthetic reference + donor + reads (the NA12878/hg19
    // stand-ins; see DESIGN.md for the substitution rationale). ----------
    let reference = Arc::new(ReferenceSpec::small(7).generate());
    let donor = DonorGenome::generate(&reference, &VariantSpec::default());
    let pairs = simulate_fastq_pairs(
        &reference,
        &donor,
        SimulatorConfig { coverage: 15.0, ..Default::default() },
    );
    let known = donor.known_sites(&reference, 0.8, 20, 99);
    println!(
        "workload: {} bp genome, {} read pairs, {} known sites, {} planted variants",
        reference.genome_length(),
        pairs.len(),
        known.len(),
        donor.truth.len()
    );

    // --- Set up environment for Process and Resource (Figure 3). --------
    let ctx = EngineContext::new(EngineConfig::gpf().with_parallelism(64));
    let mut pipeline = Pipeline::new("myPipeline", Arc::clone(&ctx));
    let dict = reference.dict().clone();

    // Load pair-end FASTQ to RDD.
    let fastq_pair_rdd = Dataset::from_vec(Arc::clone(&ctx), pairs, 64);
    let fastq_pair_bundle = FastqPairBundle::defined("fastqPair", fastq_pair_rdd);
    let dbsnp = VcfBundle::defined(
        "dbsnp",
        VcfHeaderInfo::new_header(dict.clone(), vec![]),
        Dataset::from_vec(Arc::clone(&ctx), known, 64),
    );

    // Add Aligner Process into the Pipeline.
    let aligned_sam = SamBundle::undefined("alignedSam", SamHeaderInfo::unsorted_header(dict.clone()));
    pipeline.add_process(BwaMemProcess::pair_end(
        "MyBwaMapping",
        Arc::clone(&reference),
        fastq_pair_bundle,
        Arc::clone(&aligned_sam),
    ));

    // Add Cleaner Processes into the Pipeline.
    let deduped = SamBundle::undefined("dedupedSam", SamHeaderInfo::unsorted_header(dict.clone()));
    pipeline.add_process(MarkDuplicateProcess::new(
        "MyMarkDuplicate",
        Arc::clone(&aligned_sam),
        Arc::clone(&deduped),
    ));

    let repartition_info = PartitionInfoBundle::undefined("partitionInfo");
    pipeline.add_process(ReadRepartitioner::new(
        "MyRepartitioner",
        vec![Arc::clone(&deduped)],
        Arc::clone(&repartition_info),
        reference.dict().lengths(),
        4_000,
    ));

    let realigned = SamBundle::undefined("realignedSam", SamHeaderInfo::unsorted_header(dict.clone()));
    pipeline.add_process(IndelRealignProcess::new(
        "MyIndelRealign",
        Arc::clone(&reference),
        Some(Arc::clone(&dbsnp)),
        Arc::clone(&repartition_info),
        deduped,
        Arc::clone(&realigned),
    ));

    let recaled_sam = SamBundle::undefined("recaledSam", SamHeaderInfo::unsorted_header(dict.clone()));
    pipeline.add_process(BaseRecalibrationProcess::new(
        "MyBQSR",
        Arc::clone(&reference),
        Some(Arc::clone(&dbsnp)),
        Arc::clone(&repartition_info),
        realigned,
        Arc::clone(&recaled_sam),
    ));

    // Add Caller Process into the Pipeline.
    let vcf_bundle = VcfBundle::undefined(
        "ResultVCF",
        VcfHeaderInfo::new_header(dict.clone(), vec!["sample1".into()]),
    );
    let use_gvcf = false;
    pipeline.add_process(HaplotypeCallerProcess::new(
        "MyHaplotypeCaller",
        Arc::clone(&reference),
        Some(dbsnp),
        repartition_info,
        recaled_sam,
        Arc::clone(&vcf_bundle),
        use_gvcf,
    ));

    // Issue and execute Processes.
    pipeline.run().expect("pipeline executes");

    // --- Inspect the results. -------------------------------------------
    let calls = vcf_bundle.dataset().collect_local();
    let recalled = donor
        .truth
        .iter()
        .filter(|t| calls.iter().any(|c| c.contig == t.pos.contig && c.pos.abs_diff(t.pos.pos) <= 1))
        .count();
    println!(
        "\npipeline executed {} processes ({} fused chain(s))",
        pipeline.executed().len(),
        pipeline.fused_chains().len()
    );
    println!(
        "called {} variants; recovered {}/{} planted variants",
        calls.len(),
        recalled,
        donor.truth.len()
    );

    let run = ctx.take_run();
    println!(
        "engine: {} stages, {:.1} MiB shuffled, {:.2} core-s CPU",
        run.num_stages(),
        run.total_shuffle_bytes() as f64 / (1 << 20) as f64,
        run.total_cpu_s()
    );

    println!("\nfirst VCF lines:");
    let header = VcfHeaderInfo::new_header(dict, vec!["sample1".into()]);
    for line in format_vcf(&header, &calls[..calls.len().min(5)]).lines().take(12) {
        println!("  {line}");
    }
}
