//! Trace tour: run a small GPF pipeline with tracing on, then look at the
//! run three ways — the terminal report, a Chrome/Perfetto trace file, and
//! the global counter registry.
//!
//! ```sh
//! cargo run --release --example trace_tour
//! # then open https://ui.perfetto.dev and load /tmp/gpf_trace.json
//! ```

use gpf::core::prelude::*;
use gpf::engine::{Dataset, EngineConfig, EngineContext};
use gpf::trace::sink::{chrome_trace, text_report};
use gpf::workloads::readsim::{simulate_fastq_pairs, SimulatorConfig};
use gpf::workloads::refgen::ReferenceSpec;
use gpf::workloads::variants::{DonorGenome, VariantSpec};
use std::sync::Arc;

fn main() {
    // Tracing is off by default (the engine still derives its metrics from
    // the event stream either way); turning it on adds span Begin events and
    // the ambient span()/instant()/counter APIs.
    gpf::trace::set_enabled(true);

    // A tiny workload: synthetic genome, simulated paired-end reads.
    let reference = Arc::new(ReferenceSpec::small(7).generate());
    let donor = DonorGenome::generate(&reference, &VariantSpec::default());
    let pairs = simulate_fastq_pairs(
        &reference,
        &donor,
        SimulatorConfig { coverage: 12.0, ..Default::default() },
    );
    let known = donor.known_sites(&reference, 0.8, 20, 99);

    // An application can add its own spans/counters next to the engine's.
    let ctx = EngineContext::new(EngineConfig::gpf().with_parallelism(32));
    let mut pipeline = Pipeline::new("traceTour", Arc::clone(&ctx));
    let dict = reference.dict().clone();
    {
        let mut setup = gpf::trace::span("setup:graph", gpf::trace::Category::Other);

        let fastq = FastqPairBundle::defined(
            "fastqPair",
            Dataset::from_vec(Arc::clone(&ctx), pairs, 32),
        );
        let dbsnp = VcfBundle::defined(
            "dbsnp",
            VcfHeaderInfo::new_header(dict.clone(), vec![]),
            Dataset::from_vec(Arc::clone(&ctx), known, 32),
        );
        let aligned =
            SamBundle::undefined("alignedSam", SamHeaderInfo::unsorted_header(dict.clone()));
        pipeline.add_process(BwaMemProcess::pair_end(
            "Mapping",
            Arc::clone(&reference),
            fastq,
            Arc::clone(&aligned),
        ));
        let deduped =
            SamBundle::undefined("dedupedSam", SamHeaderInfo::unsorted_header(dict.clone()));
        pipeline.add_process(MarkDuplicateProcess::new(
            "MarkDuplicate",
            Arc::clone(&aligned),
            Arc::clone(&deduped),
        ));
        let pinfo = PartitionInfoBundle::undefined("partInfo");
        pipeline.add_process(ReadRepartitioner::new(
            "Repartitioner",
            vec![Arc::clone(&deduped)],
            Arc::clone(&pinfo),
            reference.dict().lengths(),
            4_000,
        ));
        let vcf = VcfBundle::undefined(
            "ResultVCF",
            VcfHeaderInfo::new_header(dict, vec!["sample1".into()]),
        );
        pipeline.add_process(HaplotypeCallerProcess::new(
            "Caller",
            Arc::clone(&reference),
            Some(dbsnp),
            pinfo,
            deduped,
            Arc::clone(&vcf),
            false,
        ));
        setup.add_counter("processes", 4);
    }

    pipeline.run().expect("pipeline executes");

    // One drain yields both views of the run: the JobRun the simulator
    // consumes, and the raw event stream it was derived from.
    let (run, trace) = ctx.take_run_traced();
    println!(
        "run: {} stages, {:.2} core-s cpu, {:.1} KiB shuffled\n",
        run.num_stages(),
        run.total_cpu_s(),
        run.total_shuffle_bytes() as f64 / 1024.0
    );

    // View 1: terminal report (top spans, per-phase cpu, fig-12 breakdown).
    println!("{}", text_report(&trace, 5));

    // View 2: Chrome trace JSON for https://ui.perfetto.dev.
    let path = std::env::temp_dir().join("gpf_trace.json");
    std::fs::write(&path, chrome_trace(&trace)).expect("write trace");
    println!("wrote {} ({} events) - load it at https://ui.perfetto.dev", path.display(), trace.events.len());

    // View 3: the global counter registry (codec + scheduler counters land
    // here alongside anything the application added).
    println!("\nglobal counters:");
    for (name, value) in gpf::trace::counters_snapshot() {
        println!("  {name:<28} {value}");
    }
}
