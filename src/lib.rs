//! # gpf — facade crate
//!
//! Re-exports the whole GPF workspace behind one dependency, mirroring how
//! the paper's GPF presents a single framework to pipeline authors.
//!
//! See the individual crates for detail:
//! [`gpf_core`] (Process/Resource/Pipeline), [`gpf_engine`] (execution
//! engine), [`gpf_formats`], [`gpf_compress`], [`gpf_align`],
//! [`gpf_cleaner`], [`gpf_caller`], [`gpf_workloads`], [`gpf_baselines`],
//! [`gpf_trace`] (span tracing, counters, Chrome-trace export).

pub use gpf_align as align;
pub use gpf_baselines as baselines;
pub use gpf_caller as caller;
pub use gpf_cleaner as cleaner;
pub use gpf_compress as compress;
pub use gpf_core as core;
pub use gpf_engine as engine;
pub use gpf_formats as formats;
pub use gpf_trace as trace;
pub use gpf_workloads as workloads;
